file(REMOVE_RECURSE
  "CMakeFiles/experiment_api_test.dir/experiment_api_test.cc.o"
  "CMakeFiles/experiment_api_test.dir/experiment_api_test.cc.o.d"
  "experiment_api_test"
  "experiment_api_test.pdb"
  "experiment_api_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/experiment_api_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
