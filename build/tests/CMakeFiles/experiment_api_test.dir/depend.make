# Empty dependencies file for experiment_api_test.
# This may be replaced when dependencies are built.
