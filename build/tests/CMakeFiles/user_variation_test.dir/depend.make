# Empty dependencies file for user_variation_test.
# This may be replaced when dependencies are built.
