file(REMOVE_RECURSE
  "CMakeFiles/user_variation_test.dir/user_variation_test.cc.o"
  "CMakeFiles/user_variation_test.dir/user_variation_test.cc.o.d"
  "user_variation_test"
  "user_variation_test.pdb"
  "user_variation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/user_variation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
