file(REMOVE_RECURSE
  "CMakeFiles/product_tree_test.dir/product_tree_test.cc.o"
  "CMakeFiles/product_tree_test.dir/product_tree_test.cc.o.d"
  "product_tree_test"
  "product_tree_test.pdb"
  "product_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/product_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
