# Empty dependencies file for product_tree_test.
# This may be replaced when dependencies are built.
