
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/generator_test.cc" "tests/CMakeFiles/generator_test.dir/generator_test.cc.o" "gcc" "tests/CMakeFiles/generator_test.dir/generator_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/pdm_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/pdm_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/pdm_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/pdm_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/pdm_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pdm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/pdm/CMakeFiles/pdm_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
