# Empty compiler generated dependencies file for paper_constants_test.
# This may be replaced when dependencies are built.
