file(REMOVE_RECURSE
  "CMakeFiles/paper_constants_test.dir/paper_constants_test.cc.o"
  "CMakeFiles/paper_constants_test.dir/paper_constants_test.cc.o.d"
  "paper_constants_test"
  "paper_constants_test.pdb"
  "paper_constants_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paper_constants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
