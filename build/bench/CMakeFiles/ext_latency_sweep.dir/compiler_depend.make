# Empty compiler generated dependencies file for ext_latency_sweep.
# This may be replaced when dependencies are built.
