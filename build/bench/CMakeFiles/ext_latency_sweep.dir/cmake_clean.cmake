file(REMOVE_RECURSE
  "CMakeFiles/ext_latency_sweep.dir/ext_latency_sweep.cc.o"
  "CMakeFiles/ext_latency_sweep.dir/ext_latency_sweep.cc.o.d"
  "ext_latency_sweep"
  "ext_latency_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_latency_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
