# Empty dependencies file for ablation_link_rows.
# This may be replaced when dependencies are built.
