file(REMOVE_RECURSE
  "CMakeFiles/ablation_link_rows.dir/ablation_link_rows.cc.o"
  "CMakeFiles/ablation_link_rows.dir/ablation_link_rows.cc.o.d"
  "ablation_link_rows"
  "ablation_link_rows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_link_rows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
