# Empty compiler generated dependencies file for ablation_checkout.
# This may be replaced when dependencies are built.
