file(REMOVE_RECURSE
  "CMakeFiles/ablation_checkout.dir/ablation_checkout.cc.o"
  "CMakeFiles/ablation_checkout.dir/ablation_checkout.cc.o.d"
  "ablation_checkout"
  "ablation_checkout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_checkout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
