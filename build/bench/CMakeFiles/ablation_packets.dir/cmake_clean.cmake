file(REMOVE_RECURSE
  "CMakeFiles/ablation_packets.dir/ablation_packets.cc.o"
  "CMakeFiles/ablation_packets.dir/ablation_packets.cc.o.d"
  "ablation_packets"
  "ablation_packets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_packets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
