# Empty dependencies file for ablation_packets.
# This may be replaced when dependencies are built.
