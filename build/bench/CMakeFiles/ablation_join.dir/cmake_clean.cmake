file(REMOVE_RECURSE
  "CMakeFiles/ablation_join.dir/ablation_join.cc.o"
  "CMakeFiles/ablation_join.dir/ablation_join.cc.o.d"
  "ablation_join"
  "ablation_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
