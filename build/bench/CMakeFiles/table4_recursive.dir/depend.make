# Empty dependencies file for table4_recursive.
# This may be replaced when dependencies are built.
