file(REMOVE_RECURSE
  "CMakeFiles/table4_recursive.dir/table4_recursive.cc.o"
  "CMakeFiles/table4_recursive.dir/table4_recursive.cc.o.d"
  "table4_recursive"
  "table4_recursive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_recursive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
