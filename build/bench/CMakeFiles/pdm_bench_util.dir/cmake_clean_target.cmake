file(REMOVE_RECURSE
  "libpdm_bench_util.a"
)
