file(REMOVE_RECURSE
  "CMakeFiles/pdm_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/pdm_bench_util.dir/bench_util.cc.o.d"
  "CMakeFiles/pdm_bench_util.dir/fig_bars.cc.o"
  "CMakeFiles/pdm_bench_util.dir/fig_bars.cc.o.d"
  "CMakeFiles/pdm_bench_util.dir/paper_tables.cc.o"
  "CMakeFiles/pdm_bench_util.dir/paper_tables.cc.o.d"
  "libpdm_bench_util.a"
  "libpdm_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdm_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
