# Empty dependencies file for pdm_bench_util.
# This may be replaced when dependencies are built.
