# Empty dependencies file for fig5_bars.
# This may be replaced when dependencies are built.
