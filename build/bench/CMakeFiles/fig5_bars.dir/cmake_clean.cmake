file(REMOVE_RECURSE
  "CMakeFiles/fig5_bars.dir/fig5_bars.cc.o"
  "CMakeFiles/fig5_bars.dir/fig5_bars.cc.o.d"
  "fig5_bars"
  "fig5_bars.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_bars.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
