file(REMOVE_RECURSE
  "CMakeFiles/ablation_subquery_cache.dir/ablation_subquery_cache.cc.o"
  "CMakeFiles/ablation_subquery_cache.dir/ablation_subquery_cache.cc.o.d"
  "ablation_subquery_cache"
  "ablation_subquery_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_subquery_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
