# Empty dependencies file for ablation_subquery_cache.
# This may be replaced when dependencies are built.
