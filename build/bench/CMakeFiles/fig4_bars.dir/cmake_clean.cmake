file(REMOVE_RECURSE
  "CMakeFiles/fig4_bars.dir/fig4_bars.cc.o"
  "CMakeFiles/fig4_bars.dir/fig4_bars.cc.o.d"
  "fig4_bars"
  "fig4_bars.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_bars.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
