file(REMOVE_RECURSE
  "CMakeFiles/table2_late_eval.dir/table2_late_eval.cc.o"
  "CMakeFiles/table2_late_eval.dir/table2_late_eval.cc.o.d"
  "table2_late_eval"
  "table2_late_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_late_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
