# Empty compiler generated dependencies file for table2_late_eval.
# This may be replaced when dependencies are built.
