file(REMOVE_RECURSE
  "CMakeFiles/ext_server_cost.dir/ext_server_cost.cc.o"
  "CMakeFiles/ext_server_cost.dir/ext_server_cost.cc.o.d"
  "ext_server_cost"
  "ext_server_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_server_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
