# Empty compiler generated dependencies file for ext_server_cost.
# This may be replaced when dependencies are built.
