file(REMOVE_RECURSE
  "CMakeFiles/ablation_recursion.dir/ablation_recursion.cc.o"
  "CMakeFiles/ablation_recursion.dir/ablation_recursion.cc.o.d"
  "ablation_recursion"
  "ablation_recursion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_recursion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
