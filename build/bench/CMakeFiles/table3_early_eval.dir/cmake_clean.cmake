file(REMOVE_RECURSE
  "CMakeFiles/table3_early_eval.dir/table3_early_eval.cc.o"
  "CMakeFiles/table3_early_eval.dir/table3_early_eval.cc.o.d"
  "table3_early_eval"
  "table3_early_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_early_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
