# Empty compiler generated dependencies file for table3_early_eval.
# This may be replaced when dependencies are built.
