# Empty compiler generated dependencies file for parallel_views.
# This may be replaced when dependencies are built.
