file(REMOVE_RECURSE
  "CMakeFiles/parallel_views.dir/parallel_views.cpp.o"
  "CMakeFiles/parallel_views.dir/parallel_views.cpp.o.d"
  "parallel_views"
  "parallel_views.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_views.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
