file(REMOVE_RECURSE
  "CMakeFiles/rule_admin.dir/rule_admin.cpp.o"
  "CMakeFiles/rule_admin.dir/rule_admin.cpp.o.d"
  "rule_admin"
  "rule_admin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rule_admin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
