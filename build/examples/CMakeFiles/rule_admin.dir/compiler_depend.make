# Empty compiler generated dependencies file for rule_admin.
# This may be replaced when dependencies are built.
