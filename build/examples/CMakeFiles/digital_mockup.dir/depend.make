# Empty dependencies file for digital_mockup.
# This may be replaced when dependencies are built.
