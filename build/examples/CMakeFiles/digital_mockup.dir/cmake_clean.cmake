file(REMOVE_RECURSE
  "CMakeFiles/digital_mockup.dir/digital_mockup.cpp.o"
  "CMakeFiles/digital_mockup.dir/digital_mockup.cpp.o.d"
  "digital_mockup"
  "digital_mockup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/digital_mockup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
