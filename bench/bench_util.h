#ifndef PDM_BENCH_BENCH_UTIL_H_
#define PDM_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "client/experiment.h"
#include "common/result.h"
#include "model/cost_model.h"

namespace pdm::bench {

/// One simulated measurement: the WAN-accounted response time split plus
/// raw counters, and the local wall-clock cost of producing it.
struct SimCell {
  double latency = 0;
  double transfer = 0;
  double total = 0;
  size_t round_trips = 0;
  size_t transmitted_rows = 0;
  size_t visible_nodes = 0;
  double wall_seconds = 0;
};

/// Builds a deployment for (tree, net) and runs one action under one
/// strategy, returning the simulated WAN response time. The generator's
/// σ realization is the deterministic error-diffusion pattern, so runs
/// are exactly reproducible.
Result<SimCell> SimulateCell(const model::TreeParams& tree,
                             const model::NetworkParams& net,
                             model::StrategyKind strategy,
                             model::ActionKind action, uint64_t seed = 1);

/// Converts model parameters into the experiment configuration used by
/// SimulateCell (exposed for the ablation benches that tweak it).
client::ExperimentConfig MakeExperimentConfig(const model::TreeParams& tree,
                                              const model::NetworkParams& net,
                                              uint64_t seed = 1);

/// Formats seconds with two decimals, right-aligned to `width`.
std::string Sec(double seconds, int width = 9);

/// Prints the standard bench header naming the experiment.
void PrintBanner(const std::string& title);

/// The paper's printed response-time totals (two decimals), used to
/// report paper-vs-model-vs-simulation deviations. Indexing:
/// [network-scenario 0..2][tree-scenario 0..2][action 0..2], where
/// actions are Query / Expand / MLE in paper order. Table 4 carries MLE
/// only (other entries are negative sentinels).
const double (*PaperTable2Totals())[3][3];
const double (*PaperTable3Totals())[3][3];
const double (*PaperTable4MleTotals())[3];

}  // namespace pdm::bench

#endif  // PDM_BENCH_BENCH_UTIL_H_
