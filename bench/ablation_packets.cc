// Ablation: packet accounting. The paper charges each request as whole
// packets and each response as payload + half a packet (expected fill of
// the last packet); exact packetization rounds both sides up. The
// absolute times shift, but who wins — and by roughly what factor —
// does not.

#include <cstdio>

#include "bench_util.h"

namespace pdm::bench {
namespace {

using model::ActionKind;
using model::StrategyKind;

int Run() {
  PrintBanner("Ablation: paper packet accounting vs exact packetization");
  std::printf("%-18s %-18s %12s %12s %10s\n", "shape", "strategy",
              "paper-acct", "exact-acct", "ratio");

  const model::TreeParams shapes[] = {{3, 9, 0.6}, {9, 3, 0.6}, {7, 5, 0.6}};
  const StrategyKind strategies[] = {StrategyKind::kNavigationalLate,
                                     StrategyKind::kNavigationalEarly,
                                     StrategyKind::kRecursive};
  model::NetworkParams net{0.15, 256, 4096, 512};

  for (const model::TreeParams& tree : shapes) {
    double totals[2][3];
    for (int mode = 0; mode < 2; ++mode) {
      for (int s = 0; s < 3; ++s) {
        client::ExperimentConfig config = MakeExperimentConfig(tree, net);
        config.wan.accounting = mode == 0 ? net::Accounting::kPaperModel
                                          : net::Accounting::kExactPackets;
        Result<std::unique_ptr<client::Experiment>> experiment =
            client::Experiment::Create(config);
        if (!experiment.ok()) return 1;
        Result<client::ActionResult> result = (*experiment)->RunAction(
            strategies[s], ActionKind::kMultiLevelExpand);
        if (!result.ok()) {
          std::fprintf(stderr, "action failed: %s\n",
                       result.status().ToString().c_str());
          return 1;
        }
        totals[mode][s] = result->seconds();
      }
    }
    for (int s = 0; s < 3; ++s) {
      std::printf("α=%d,ω=%d %10s %-18s %12.2f %12.2f %10.2f\n", tree.depth,
                  tree.branching, "",
                  std::string(model::StrategyKindName(strategies[s])).c_str(),
                  totals[0][s], totals[1][s], totals[1][s] / totals[0][s]);
    }
    // The headline claim must be accounting-invariant: recursion wins.
    double saving_paper = (totals[0][0] - totals[0][2]) / totals[0][0] * 100;
    double saving_exact = (totals[1][0] - totals[1][2]) / totals[1][0] * 100;
    std::printf("  -> MLE saving vs late baseline: %.1f%% (paper acct), "
                "%.1f%% (exact acct)\n",
                saving_paper, saving_exact);
  }
  std::printf("\n");
  return 0;
}

}  // namespace
}  // namespace pdm::bench

int main() { return pdm::bench::Run(); }
