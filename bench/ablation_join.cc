// Ablation: join strategy. The recursive members join
// rtbl ⋈ link ⋈ {assy,comp}; the navigational expand storm issues
// hundreds of point-joins. We compare:
//   * nested-loop joins only            (use_hash_join = off)
//   * hash joins (+ shared table index) (default)
// and report local wall time plus the engine's join counters.

#include <chrono>
#include <cstdio>

#include "bench_util.h"

namespace pdm::bench {
namespace {

using Clock = std::chrono::steady_clock;
using model::ActionKind;
using model::StrategyKind;

int Run() {
  PrintBanner("Ablation: nested-loop joins vs hash/index joins");
  std::printf("%-18s %-22s %-10s %10s %14s %14s\n", "shape", "workload",
              "joins", "wall-ms", "nlj-probes", "index-probes");

  struct Case {
    model::TreeParams tree;
    StrategyKind strategy;
    ActionKind action;
    const char* label;
  };
  const Case cases[] = {
      {{3, 9, 0.6}, StrategyKind::kRecursive, ActionKind::kMultiLevelExpand,
       "recursive MLE"},
      {{5, 5, 0.6}, StrategyKind::kRecursive, ActionKind::kMultiLevelExpand,
       "recursive MLE"},
      {{5, 5, 0.6}, StrategyKind::kNavigationalEarly,
       ActionKind::kMultiLevelExpand, "navigational storm"},
  };

  for (const Case& c : cases) {
    for (bool hash_join : {false, true}) {
      model::NetworkParams net;
      client::ExperimentConfig config = MakeExperimentConfig(c.tree, net);
      Result<std::unique_ptr<client::Experiment>> experiment =
          client::Experiment::Create(config);
      if (!experiment.ok()) {
        std::fprintf(stderr, "setup failed: %s\n",
                     experiment.status().ToString().c_str());
        return 1;
      }
      Database& db = (*experiment)->server().database();
      db.options().binder.use_hash_join = hash_join;

      Clock::time_point start = Clock::now();
      Result<client::ActionResult> result =
          (*experiment)->RunAction(c.strategy, c.action);
      Clock::time_point end = Clock::now();
      if (!result.ok()) {
        std::fprintf(stderr, "action failed: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
      // last_stats covers the final statement; probes accumulate per
      // statement, which is representative for both workloads.
      std::printf("α=%d,ω=%d %10s %-22s %-10s %10.2f %14zu %14zu\n",
                  c.tree.depth, c.tree.branching, "", c.label,
                  hash_join ? "hash+index" : "nlj-only",
                  std::chrono::duration<double>(end - start).count() * 1000,
                  db.last_stats().nl_join_probes,
                  db.last_stats().index_join_probes);
    }
  }
  std::printf("\n");
  return 0;
}

}  // namespace
}  // namespace pdm::bench

int main() { return pdm::bench::Run(); }
