// Per-component reconciliation of the tracer against the cost model
// (DESIGN.md 5f): runs the Table 2/3/4 actions over the paper's grid
// with tracing enabled, sums the recorded spans by model term, and
// asserts that
//   * the traced t_lat sum matches eq. (2) evaluated on the realized
//     round-trip count,
//   * the traced t_transfer sum matches eq. (3) evaluated on the
//     realized packet/byte counts,
//   * the traced t_server sum matches the server-cost model recomputed
//     independently from the statement log,
//   * t_lat + t_transfer reproduces the WAN link's total exactly,
// each within 1% (the first three are exact in practice; the tolerance
// absorbs floating-point accumulation order). Closed-form deviations
// against model::Predict are printed for reference — those carry the
// stochastic sigma realization and are NOT asserted here (the
// simulation-agreement tests own that bound).
//
// Also writes one representative action's spans as Chrome trace-event
// JSON (chrome://tracing / Perfetto): --json PATH, default
// trace_breakdown.json. Exits non-zero on any reconciliation failure.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "obs/export.h"
#include "obs/trace.h"
#include "server/db_server.h"

namespace pdm::bench {
namespace {

using model::ActionKind;
using model::StrategyKind;

struct CellCheck {
  double measured = 0;
  double expected = 0;

  double deviation() const {
    if (expected == 0 && measured == 0) return 0;
    if (expected == 0) return 1;
    return std::fabs(measured - expected) / expected;
  }
};

/// t_server recomputed from the statement log — an independent pass
/// over the same per-statement facts the spans were charged from.
/// Agreement means the tracer saw every executed statement exactly
/// once; coalesced fan-out slots never reached the engine and carry no
/// span, so they are skipped on both sides.
double ServerSecondsFromLog(const DbServer& server) {
  double sum = 0;
  for (const DbServer::StatementLogEntry& entry : server.statement_log()) {
    if (entry.coalesced) continue;
    sum += model::ServerSeconds(server.config().server_cost, entry.Work());
  }
  return sum;
}

struct ActionSpec {
  StrategyKind strategy;
  ActionKind action;
};

int Run(const std::string& json_path) {
  constexpr double kTolerance = 0.01;
  const std::vector<model::TreeParams> trees = model::PaperTreeScenarios();
  const std::vector<model::NetworkParams> nets =
      model::PaperNetworkScenarios();
  const std::vector<ActionSpec> specs = {
      {StrategyKind::kNavigationalLate, ActionKind::kQuery},
      {StrategyKind::kNavigationalLate, ActionKind::kSingleLevelExpand},
      {StrategyKind::kNavigationalLate, ActionKind::kMultiLevelExpand},
      {StrategyKind::kNavigationalEarly, ActionKind::kQuery},
      {StrategyKind::kNavigationalEarly, ActionKind::kSingleLevelExpand},
      {StrategyKind::kNavigationalEarly, ActionKind::kMultiLevelExpand},
      {StrategyKind::kRecursive, ActionKind::kMultiLevelExpand},
  };

  PrintBanner("trace_breakdown: traced spans vs eqs. (1)-(3) per component");
  std::printf(
      "%-4s %-8s %-18s %-6s | %10s %10s %10s %10s | %8s %9s\n",
      "net", "tree", "strategy", "action", "t_lat", "t_transfer", "t_server",
      "total", "max-dev", "closed-fm");

  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.set_capacity(1 << 18);

  size_t failures = 0;
  std::vector<obs::SpanRecord> representative;
  for (size_t ni = 0; ni < nets.size(); ++ni) {
    for (size_t ti = 0; ti < trees.size(); ++ti) {
      for (const ActionSpec& spec : specs) {
        client::ExperimentConfig config =
            MakeExperimentConfig(trees[ti], nets[ni]);
        Result<std::unique_ptr<client::Experiment>> experiment =
            client::Experiment::Create(config);
        if (!experiment.ok()) {
          std::fprintf(stderr, "experiment: %s\n",
                       experiment.status().ToString().c_str());
          return 1;
        }
        client::Experiment& e = **experiment;
        // Unbounded log for the reconciliation pass: the deepest MLE
        // ships ~3280 statements and every one must be accounted.
        e.server().mutable_config().statement_log_capacity = 0;
        e.server().EnableStatementLog(true);
        tracer.Enable(true);
        e.server().ResetObservability();

        Result<client::ActionResult> result =
            e.RunAction(spec.strategy, spec.action);
        std::vector<obs::SpanRecord> spans = tracer.Snapshot();
        tracer.Enable(false);
        if (!result.ok()) {
          std::fprintf(stderr, "action: %s\n",
                       result.status().ToString().c_str());
          return 1;
        }

        const net::WanStats& wan = result->wan;
        obs::TermBreakdown breakdown = obs::BreakdownByTerm(spans);

        // Eqs. (1)-(3) on the realized traffic counts.
        model::TrafficCounts counts;
        counts.round_trips = static_cast<double>(wan.round_trips);
        counts.request_packets = static_cast<double>(wan.request_packets);
        counts.response_payload_bytes = wan.response_payload_bytes;
        model::ResponseTime predicted =
            model::PredictFromTraffic(nets[ni], counts);

        CellCheck checks[4] = {
            {breakdown.sim(obs::ModelTerm::kLat), predicted.latency_part},
            {breakdown.sim(obs::ModelTerm::kTransfer),
             predicted.transfer_part},
            {breakdown.sim(obs::ModelTerm::kServer),
             ServerSecondsFromLog(e.server())},
            {breakdown.sim(obs::ModelTerm::kLat) +
                 breakdown.sim(obs::ModelTerm::kTransfer),
             wan.total_seconds()},
        };
        double max_dev = 0;
        for (const CellCheck& check : checks) {
          max_dev = std::max(max_dev, check.deviation());
        }
        bool ok = max_dev <= kTolerance;
        if (!ok) ++failures;

        // Closed-form deviation (informational): eq. (1)-(6) evaluated
        // on the tree parameters, stochastic sigma realization and all.
        model::ResponseTime closed =
            model::Predict(spec.strategy, spec.action, trees[ti], nets[ni]);
        double measured_total = checks[3].measured;
        double closed_dev =
            closed.total() == 0
                ? 0
                : (measured_total - closed.total()) / closed.total();

        std::printf(
            "%-4zu a%db%d    %-18s %-6s | %10.3f %10.3f %10.5f %10.3f | "
            "%7.3f%% %8.2f%%%s\n",
            ni, trees[ti].depth, trees[ti].branching,
            std::string(model::StrategyKindName(spec.strategy)).c_str(),
            spec.action == ActionKind::kQuery ? "query"
            : spec.action == ActionKind::kSingleLevelExpand ? "sle"
                                                            : "mle",
            checks[0].measured, checks[1].measured, checks[2].measured,
            measured_total, max_dev * 100.0, closed_dev * 100.0,
            ok ? "" : "  RECONCILIATION FAILED");

        // Representative export: the richest single-trace picture —
        // navigational late MLE on the paper's headline WAN/tree.
        if (ni == 0 && ti == 0 &&
            spec.strategy == StrategyKind::kNavigationalLate &&
            spec.action == ActionKind::kMultiLevelExpand) {
          representative = std::move(spans);
        }
      }
    }
  }

  if (!representative.empty()) {
    obs::TermBreakdown breakdown = obs::BreakdownByTerm(representative);
    std::printf("\nrepresentative action (net 0, a3b9, navigational-late "
                "mle): %zu spans\n%s",
                representative.size(),
                obs::RenderBreakdownTable(breakdown).c_str());
    Status written = obs::WriteChromeTraceFile(json_path, representative);
    if (!written.ok()) {
      std::fprintf(stderr, "trace export: %s\n",
                   written.ToString().c_str());
      return 1;
    }
    std::printf("chrome trace written to %s (load in chrome://tracing or "
                "ui.perfetto.dev)\n",
                json_path.c_str());
  }

  if (failures > 0) {
    std::fprintf(stderr, "\n%zu cell(s) exceeded the %.0f%% tolerance\n",
                 failures, kTolerance * 100.0);
    return 1;
  }
  std::printf("\nall cells reconciled within %.0f%%\n", kTolerance * 100.0);
  return 0;
}

}  // namespace
}  // namespace pdm::bench

int main(int argc, char** argv) {
  std::string json_path = "trace_breakdown.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--json PATH]\n", argv[0]);
      return 2;
    }
  }
  return pdm::bench::Run(json_path);
}
