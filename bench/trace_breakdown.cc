// Per-component reconciliation of the tracer against the cost model
// (DESIGN.md 5f): runs the Table 2/3/4 actions over the paper's grid
// with tracing enabled, sums the recorded spans by model term, and
// asserts that
//   * the traced t_lat sum matches eq. (2) evaluated on the realized
//     round-trip count,
//   * the traced t_transfer sum matches eq. (3) evaluated on the
//     realized packet/byte counts,
//   * the traced t_server sum matches the server-cost model recomputed
//     independently from the statement log,
//   * t_lat + t_transfer reproduces the WAN link's total exactly,
// each within 1% (the first three are exact in practice; the tolerance
// absorbs floating-point accumulation order). Closed-form deviations
// against model::Predict are printed for reference — those carry the
// stochastic sigma realization and are NOT asserted here (the
// simulation-agreement tests own that bound).
//
// Also writes one representative action's spans as Chrome trace-event
// JSON (chrome://tracing / Perfetto): --json PATH, default
// trace_breakdown.json. Exits non-zero on any reconciliation failure.
//
// Telemetry surfaces (DESIGN.md 5k), accumulated across the whole grid
// (each net scenario runs under its own site label):
//  * per-site / per-class p50/p99/p999 quantile table from the
//    dimensioned "server.statement_sim_seconds" histograms;
//  * the merged slow-query top-K across all cells — gated: the single
//    most expensive statement must be a recursive expand;
//  * --metrics PATH writes the versioned metrics JSON snapshot,
//    --slow PATH the slow-query records (both consumed by CI).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/snapshot.h"
#include "obs/trace.h"
#include "server/db_server.h"
#include "server/slow_query_log.h"

namespace pdm::bench {
namespace {

using model::ActionKind;
using model::StrategyKind;

struct CellCheck {
  double measured = 0;
  double expected = 0;

  double deviation() const {
    if (expected == 0 && measured == 0) return 0;
    if (expected == 0) return 1;
    return std::fabs(measured - expected) / expected;
  }
};

/// t_server recomputed from the statement log — an independent pass
/// over the same per-statement facts the spans were charged from.
/// Agreement means the tracer saw every executed statement exactly
/// once; coalesced fan-out slots never reached the engine and carry no
/// span, so they are skipped on both sides.
double ServerSecondsFromLog(const DbServer& server) {
  double sum = 0;
  for (const DbServer::StatementLogEntry& entry : server.statement_log()) {
    if (entry.coalesced) continue;
    sum += model::ServerSeconds(server.config().server_cost, entry.Work());
  }
  return sum;
}

struct ActionSpec {
  StrategyKind strategy;
  ActionKind action;
};

/// Site labels for the three paper network scenarios, in
/// PaperNetworkScenarios order: the 256 kbit and 512 kbit WANs and the
/// fast 1 Mbit link.
const char* SiteName(size_t net_index) {
  static const char* kSites[] = {"wan256k", "wan512k", "fast1m"};
  return net_index < 3 ? kSites[net_index] : "other";
}

int Run(const std::string& json_path, const std::string& metrics_path,
        const std::string& slow_path) {
  constexpr double kTolerance = 0.01;
  const std::vector<model::TreeParams> trees = model::PaperTreeScenarios();
  const std::vector<model::NetworkParams> nets =
      model::PaperNetworkScenarios();
  const std::vector<ActionSpec> specs = {
      {StrategyKind::kNavigationalLate, ActionKind::kQuery},
      {StrategyKind::kNavigationalLate, ActionKind::kSingleLevelExpand},
      {StrategyKind::kNavigationalLate, ActionKind::kMultiLevelExpand},
      {StrategyKind::kNavigationalEarly, ActionKind::kQuery},
      {StrategyKind::kNavigationalEarly, ActionKind::kSingleLevelExpand},
      {StrategyKind::kNavigationalEarly, ActionKind::kMultiLevelExpand},
      {StrategyKind::kRecursive, ActionKind::kMultiLevelExpand},
  };

  PrintBanner("trace_breakdown: traced spans vs eqs. (1)-(3) per component");
  std::printf(
      "%-4s %-8s %-18s %-6s | %10s %10s %10s %10s | %8s %9s\n",
      "net", "tree", "strategy", "action", "t_lat", "t_transfer", "t_server",
      "total", "max-dev", "closed-fm");

  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.set_capacity(1 << 18);
  // One fresh metrics window for the whole grid: the dimensioned
  // quantile tables below aggregate across all 63 cells, so the
  // registry resets once here and never per cell (each cell gets a
  // fresh Experiment, so statement/plan-cache/wave logs are new
  // anyway; only the tracer's span ring is cleared per cell).
  obs::MetricsRegistry::Global().ResetAll();

  size_t failures = 0;
  std::vector<obs::SpanRecord> representative;
  std::vector<SlowQueryRecord> slow_merged;
  for (size_t ni = 0; ni < nets.size(); ++ni) {
    for (size_t ti = 0; ti < trees.size(); ++ti) {
      for (const ActionSpec& spec : specs) {
        client::ExperimentConfig config =
            MakeExperimentConfig(trees[ti], nets[ni]);
        config.wan.site = SiteName(ni);
        Result<std::unique_ptr<client::Experiment>> experiment =
            client::Experiment::Create(config);
        if (!experiment.ok()) {
          std::fprintf(stderr, "experiment: %s\n",
                       experiment.status().ToString().c_str());
          return 1;
        }
        client::Experiment& e = **experiment;
        // Unbounded log for the reconciliation pass: the deepest MLE
        // ships ~3280 statements and every one must be accounted.
        e.server().mutable_config().statement_log_capacity = 0;
        e.server().EnableStatementLog(true);
        tracer.Enable(true);
        tracer.Clear();

        Result<client::ActionResult> result =
            e.RunAction(spec.strategy, spec.action);
        std::vector<obs::SpanRecord> spans = tracer.Snapshot();
        tracer.Enable(false);
        if (!result.ok()) {
          std::fprintf(stderr, "action: %s\n",
                       result.status().ToString().c_str());
          return 1;
        }

        const net::WanStats& wan = result->wan;
        obs::TermBreakdown breakdown = obs::BreakdownByTerm(spans);

        // Eqs. (1)-(3) on the realized traffic counts.
        model::TrafficCounts counts;
        counts.round_trips = static_cast<double>(wan.round_trips);
        counts.request_packets = static_cast<double>(wan.request_packets);
        counts.response_payload_bytes = wan.response_payload_bytes;
        model::ResponseTime predicted =
            model::PredictFromTraffic(nets[ni], counts);

        CellCheck checks[4] = {
            {breakdown.sim(obs::ModelTerm::kLat), predicted.latency_part},
            {breakdown.sim(obs::ModelTerm::kTransfer),
             predicted.transfer_part},
            {breakdown.sim(obs::ModelTerm::kServer),
             ServerSecondsFromLog(e.server())},
            {breakdown.sim(obs::ModelTerm::kLat) +
                 breakdown.sim(obs::ModelTerm::kTransfer),
             wan.total_seconds()},
        };
        double max_dev = 0;
        for (const CellCheck& check : checks) {
          max_dev = std::max(max_dev, check.deviation());
        }
        bool ok = max_dev <= kTolerance;
        if (!ok) ++failures;

        // Closed-form deviation (informational): eq. (1)-(6) evaluated
        // on the tree parameters, stochastic sigma realization and all.
        model::ResponseTime closed =
            model::Predict(spec.strategy, spec.action, trees[ti], nets[ni]);
        double measured_total = checks[3].measured;
        double closed_dev =
            closed.total() == 0
                ? 0
                : (measured_total - closed.total()) / closed.total();

        std::printf(
            "%-4zu a%db%d    %-18s %-6s | %10.3f %10.3f %10.5f %10.3f | "
            "%7.3f%% %8.2f%%%s\n",
            ni, trees[ti].depth, trees[ti].branching,
            std::string(model::StrategyKindName(spec.strategy)).c_str(),
            spec.action == ActionKind::kQuery ? "query"
            : spec.action == ActionKind::kSingleLevelExpand ? "sle"
                                                            : "mle",
            checks[0].measured, checks[1].measured, checks[2].measured,
            measured_total, max_dev * 100.0, closed_dev * 100.0,
            ok ? "" : "  RECONCILIATION FAILED");

        // Representative export: the richest single-trace picture —
        // navigational late MLE on the paper's headline WAN/tree.
        if (ni == 0 && ti == 0 &&
            spec.strategy == StrategyKind::kNavigationalLate &&
            spec.action == ActionKind::kMultiLevelExpand) {
          representative = std::move(spans);
        }

        // Merge this cell's slow-query top-K into the grid-wide list
        // (each cell's server — and so its slow-query log — is fresh).
        for (SlowQueryRecord& rec : e.server().slow_query_log().TopK()) {
          slow_merged.push_back(std::move(rec));
        }
      }
    }
  }

  if (!representative.empty()) {
    obs::TermBreakdown breakdown = obs::BreakdownByTerm(representative);
    std::printf("\nrepresentative action (net 0, a3b9, navigational-late "
                "mle): %zu spans\n%s",
                representative.size(),
                obs::RenderBreakdownTable(breakdown).c_str());
    Status written = obs::WriteChromeTraceFile(json_path, representative);
    if (!written.ok()) {
      std::fprintf(stderr, "trace export: %s\n",
                   written.ToString().c_str());
      return 1;
    }
    std::printf("chrome trace written to %s (load in chrome://tracing or "
                "ui.perfetto.dev)\n",
                json_path.c_str());
  }

  // Per-site / per-class quantile table from the dimensioned statement
  // histograms, accumulated over the whole grid (DESIGN.md 5k).
  std::printf("\nper-site/per-class simulated statement cost quantiles:\n");
  std::printf("%-10s %-8s %-6s %10s %12s %12s %12s\n", "site", "class",
              "engine", "count", "p50-s", "p99-s", "p999-s");
  std::vector<obs::LogHistogramSnapshot> log_hists =
      obs::MetricsRegistry::Global().LogHistogramSnapshots();
  for (const obs::LogHistogramSnapshot& h : log_hists) {
    if (h.name != "server.statement_sim_seconds" || h.total_count == 0) {
      continue;
    }
    std::string site, stmt_class, engine;
    for (const auto& [key, value] : h.labels) {
      if (key == "site") site = value;
      else if (key == "stmt_class") stmt_class = value;
      else if (key == "engine") engine = value;
    }
    std::printf("%-10s %-8s %-6s %10llu %12.6f %12.6f %12.6f\n", site.c_str(),
                stmt_class.c_str(), engine.c_str(),
                static_cast<unsigned long long>(h.total_count), h.p50, h.p99,
                h.p999);
  }

  // Grid-wide slow-query top list: the statements a DBA tuning this
  // deployment would look at first. The paper's answer — and the gate
  // below — is that the recursive structure expand dominates.
  std::sort(slow_merged.begin(), slow_merged.end(),
            [](const SlowQueryRecord& a, const SlowQueryRecord& b) {
              return a.sim_server_seconds > b.sim_server_seconds;
            });
  constexpr size_t kGlobalTopK = 16;
  if (slow_merged.size() > kGlobalTopK) slow_merged.resize(kGlobalTopK);
  std::printf("\nslow-query top %zu across the grid (by simulated cost):\n",
              slow_merged.size());
  std::printf("%-10s %-8s %-6s %12s %10s %10s  %s\n", "site", "class",
              "engine", "sim-s", "cte-rows", "rows", "sql (head)");
  for (const SlowQueryRecord& rec : slow_merged) {
    std::printf("%-10s %-8s %-6s %12.6f %10zu %10zu  %.48s\n",
                rec.site.c_str(), rec.stmt_class.c_str(), rec.engine.c_str(),
                rec.sim_server_seconds, rec.cte_rows_scanned,
                rec.rows_scanned, rec.sql.c_str());
  }
  // Gate: the log caught the known-slowest paper-grid statements — the
  // top entry carries real cost, and the recursive structure expand
  // (with CTE work) sits among the leaders (the full-product scan of
  // the query-all action is its only rival).
  bool expand_in_leaders = false;
  for (size_t i = 0; i < slow_merged.size() && i < 6; ++i) {
    if (slow_merged[i].stmt_class == "expand" &&
        slow_merged[i].cte_rows_scanned > 0) {
      expand_in_leaders = true;
    }
  }
  if (slow_merged.empty() || slow_merged.front().sim_server_seconds <= 0 ||
      !expand_in_leaders) {
    std::fprintf(stderr,
                 "\nslow-query gate FAILED: expected a recursive expand "
                 "with CTE work among the grid's most expensive "
                 "statements\n");
    ++failures;
  }

  if (!metrics_path.empty()) {
    obs::MetricsSnapshot snapshot =
        obs::CaptureMetricsSnapshot("trace_breakdown");
    Status written = obs::WriteSnapshotJsonFile(metrics_path, snapshot);
    if (!written.ok()) {
      std::fprintf(stderr, "metrics export: %s\n", written.ToString().c_str());
      return 1;
    }
    std::printf("\nmetrics snapshot written to %s (%zu log histograms)\n",
                metrics_path.c_str(), snapshot.log_histograms.size());
  }
  if (!slow_path.empty()) {
    std::string json = SlowQueryRecordsToJson(slow_merged);
    std::FILE* file = std::fopen(slow_path.c_str(), "wb");
    if (file == nullptr ||
        std::fwrite(json.data(), 1, json.size(), file) != json.size() ||
        std::fclose(file) != 0) {
      std::fprintf(stderr, "slow-query export: cannot write %s\n",
                   slow_path.c_str());
      return 1;
    }
    std::printf("slow-query records written to %s\n", slow_path.c_str());
  }

  if (failures > 0) {
    std::fprintf(stderr, "\n%zu cell(s)/gate(s) exceeded the %.0f%% "
                 "tolerance\n",
                 failures, kTolerance * 100.0);
    return 1;
  }
  std::printf("\nall cells reconciled within %.0f%%\n", kTolerance * 100.0);
  return 0;
}

}  // namespace
}  // namespace pdm::bench

int main(int argc, char** argv) {
  std::string json_path = "trace_breakdown.json";
  std::string metrics_path;
  std::string slow_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (std::strcmp(argv[i], "--slow") == 0 && i + 1 < argc) {
      slow_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--json PATH] [--metrics PATH] [--slow PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  return pdm::bench::Run(json_path, metrics_path, slow_path);
}
