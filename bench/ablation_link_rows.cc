// Ablation: wire accounting of the recursive result's link rows. The
// paper's eq. (5) charges n_v * size_n — object rows only (structure
// info rides along, as in navigational responses). Charging the link
// rows separately roughly doubles the recursive transfer volume; the
// headline saving barely moves because latency dominated the baseline.

#include <cstdio>

#include "bench_util.h"

namespace pdm::bench {
namespace {

using model::ActionKind;
using model::StrategyKind;

int Run() {
  PrintBanner("Ablation: charging link rows in the recursive response");
  std::printf("%-18s %-12s %12s %12s %12s\n", "shape", "link-rows",
              "rec-MLE s", "late-MLE s", "saving %");

  model::NetworkParams net{0.15, 256, 4096, 512};
  const model::TreeParams shapes[] = {{3, 9, 0.6}, {9, 3, 0.6}, {7, 5, 0.6}};
  for (const model::TreeParams& tree : shapes) {
    for (bool charge : {false, true}) {
      client::ExperimentConfig config = MakeExperimentConfig(tree, net);
      config.client.charge_link_rows = charge;
      Result<std::unique_ptr<client::Experiment>> experiment =
          client::Experiment::Create(config);
      if (!experiment.ok()) return 1;
      Result<client::ActionResult> rec = (*experiment)->RunAction(
          StrategyKind::kRecursive, ActionKind::kMultiLevelExpand);
      Result<client::ActionResult> late = (*experiment)->RunAction(
          StrategyKind::kNavigationalLate, ActionKind::kMultiLevelExpand);
      if (!rec.ok() || !late.ok()) {
        std::fprintf(stderr, "action failed\n");
        return 1;
      }
      double saving =
          (late->seconds() - rec->seconds()) / late->seconds() * 100.0;
      std::printf("α=%d,ω=%d %10s %-12s %12.2f %12.2f %12.1f\n", tree.depth,
                  tree.branching, "", charge ? "charged" : "free",
                  rec->seconds(), late->seconds(), saving);
    }
  }
  std::printf("\n");
  return 0;
}

}  // namespace
}  // namespace pdm::bench

int main() { return pdm::bench::Run(); }
