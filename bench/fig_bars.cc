#include "fig_bars.h"

#include <algorithm>
#include <cstdio>

namespace pdm::bench {

namespace {
using model::ActionKind;
using model::StrategyKind;
}  // namespace

int RunFigureBars(const char* title, const model::TreeParams& tree,
                  const model::NetworkParams& net) {
  PrintBanner(title);
  std::printf("α=%d ω=%d σ=%.1f, T_Lat=%.0fms, dtr=%.0f kbit/s\n\n",
              tree.depth, tree.branching, tree.sigma, net.latency_s * 1000,
              net.dtr_kbit);

  const StrategyKind strategies[] = {
      StrategyKind::kNavigationalLate, StrategyKind::kNavigationalEarly,
      StrategyKind::kBatchedLate, StrategyKind::kBatchedEarly,
      StrategyKind::kRecursive};
  constexpr int kNumStrategies = 5;
  const ActionKind actions[] = {ActionKind::kQuery,
                                ActionKind::kSingleLevelExpand,
                                ActionKind::kMultiLevelExpand};

  double sim[kNumStrategies][3];
  double max_value = 0;
  for (int s = 0; s < kNumStrategies; ++s) {
    for (int a = 0; a < 3; ++a) {
      Result<SimCell> cell =
          SimulateCell(tree, net, strategies[s], actions[a]);
      if (!cell.ok()) {
        std::fprintf(stderr, "simulation failed: %s\n",
                     cell.status().ToString().c_str());
        return 1;
      }
      sim[s][a] = cell->total;
      max_value = std::max(max_value, cell->total);
    }
  }

  std::printf("%-20s %10s %10s %10s   (simulated seconds)\n", "",
              "Query", "Expand", "MLE");
  for (int s = 0; s < kNumStrategies; ++s) {
    std::printf("%-20s %10.2f %10.2f %10.2f\n",
                std::string(model::StrategyKindName(strategies[s])).c_str(),
                sim[s][0], sim[s][1], sim[s][2]);
  }

  std::printf("\nbars (one '#' per %.1f s):\n", max_value / 50.0);
  for (int s = 0; s < kNumStrategies; ++s) {
    for (int a = 0; a < 3; ++a) {
      int len = max_value > 0
                    ? static_cast<int>(sim[s][a] / max_value * 50.0 + 0.5)
                    : 0;
      std::printf("%-12s %-7s |%s %.2f\n",
                  std::string(model::StrategyKindName(strategies[s])).c_str(),
                  std::string(model::ActionKindName(actions[a])).c_str(),
                  std::string(static_cast<size_t>(len), '#').c_str(),
                  sim[s][a]);
    }
  }
  std::printf("\n");
  return 0;
}

}  // namespace pdm::bench
