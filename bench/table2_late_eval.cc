// Regenerates the paper's Table 2 (response times under late rule
// evaluation) from both the closed-form model and the simulated system.

#include "paper_tables.h"

int main() {
  return pdm::bench::RunPaperTable(
      pdm::model::StrategyKind::kNavigationalLate);
}
