// Extension figure: where does the crossover lie? The paper's fixed
// scenarios show recursion winning at WAN latencies; this sweep varies
// the one-way latency from LAN (0.5 ms) to satellite (600 ms) and prints
// the saving of each approach over the late baseline — showing that the
// benefit is a latency effect (the paper's "hardly any problem ... in
// local-area networks" observation, quantified).

#include <cstdio>

#include "bench_util.h"

namespace pdm::bench {
namespace {

using model::ActionKind;
using model::StrategyKind;

int Run() {
  PrintBanner("Extension: MLE response time vs one-way latency (α=5, ω=4)");
  std::printf("%-12s %12s %12s %12s | %10s %10s\n", "latency", "late-s",
              "early-s", "recursive-s", "early-sav%", "rec-sav%");

  model::TreeParams tree{5, 4, 0.6};
  const double latencies_ms[] = {0.5, 2, 10, 50, 150, 300, 600};
  for (double lat : latencies_ms) {
    model::NetworkParams net{lat / 1000.0, 256, 4096, 512};
    double totals[3];
    int i = 0;
    for (StrategyKind strategy :
         {StrategyKind::kNavigationalLate, StrategyKind::kNavigationalEarly,
          StrategyKind::kRecursive}) {
      Result<SimCell> cell =
          SimulateCell(tree, net, strategy, ActionKind::kMultiLevelExpand);
      if (!cell.ok()) {
        std::fprintf(stderr, "simulation failed: %s\n",
                     cell.status().ToString().c_str());
        return 1;
      }
      totals[i++] = cell->total;
    }
    std::printf("%9.1fms %12.2f %12.2f %12.2f | %10.1f %10.1f\n", lat,
                totals[0], totals[1], totals[2],
                (totals[0] - totals[1]) / totals[0] * 100.0,
                (totals[0] - totals[2]) / totals[0] * 100.0);
  }
  std::printf(
      "\nTwo separable effects: per-message overhead (each navigational\n"
      "response pads its last packet, so hundreds of small responses lose\n"
      "even at LAN latency under the paper's accounting) and per-message\n"
      "latency, which grows the absolute gap from seconds to minutes as\n"
      "the link stretches to intercontinental delays. Early evaluation\n"
      "alone never rescues the MLE (~2-5%%), exactly as in Table 3.\n\n");
  return 0;
}

}  // namespace
}  // namespace pdm::bench

int main() { return pdm::bench::Run(); }
