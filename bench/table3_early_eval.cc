// Regenerates the paper's Table 3 (early rule evaluation, Approach 1)
// including the saving-vs-baseline percentages.

#include "paper_tables.h"

int main() {
  return pdm::bench::RunPaperTable(
      pdm::model::StrategyKind::kNavigationalEarly);
}
