// Ablation: uncorrelated-subquery caching. The paper's Section 5.3.1
// notes that its all-or-nothing encoding re-states the same subquery in
// the outer WHERE clauses, "but an intelligent query optimizer will
// recognize that the inner clause needs to be evaluated only once". We
// measure exactly that: the full recursive tree query with a ∀rows and a
// tree-aggregate rule, with the cache on vs off.

#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "rules/query_builder.h"
#include "rules/query_modificator.h"
#include "sql/parser.h"

namespace pdm::bench {
namespace {

using Clock = std::chrono::steady_clock;

int Run() {
  PrintBanner("Ablation: uncorrelated subquery caching (paper 5.3.1)");
  std::printf("%-18s %-8s %10s %16s %12s\n", "shape", "cache", "wall-ms",
              "subquery-evals", "cache-hits");

  const model::TreeParams shapes[] = {{3, 9, 0.6}, {6, 4, 0.6}};
  for (const model::TreeParams& tree : shapes) {
    for (bool cached : {true, false}) {
      model::NetworkParams net;
      client::ExperimentConfig config = MakeExperimentConfig(tree, net);
      Result<std::unique_ptr<client::Experiment>> experiment =
          client::Experiment::Create(config);
      if (!experiment.ok()) {
        std::fprintf(stderr, "setup failed: %s\n",
                     experiment.status().ToString().c_str());
        return 1;
      }
      client::Experiment& e = **experiment;
      Database& db = e.server().database();
      db.options().exec.cache_uncorrelated_subqueries = cached;

      // Add a ∀rows and a tree-aggregate rule so steps A and B inject
      // subqueries into every outer SELECT.
      Result<sql::ExprPtr> pred = sql::ParseSqlExpression("dec <> 'x'");
      if (!pred.ok()) return 1;
      rules::Rule forall;
      forall.condition = std::make_unique<rules::ForAllRowsCondition>(
          "assy", std::move(*pred));
      e.rule_table().AddRule(std::move(forall));
      rules::Rule agg;
      agg.condition = std::make_unique<rules::TreeAggregateCondition>(
          AggKind::kCountStar, "", "assy", sql::BinaryOp::kLessEq,
          Value::Int64(1000000));
      e.rule_table().AddRule(std::move(agg));

      std::unique_ptr<sql::SelectStmt> stmt =
          rules::BuildRecursiveTreeQuery(e.product().root_obid);
      rules::QueryModificator modificator(&e.rule_table(), e.user());
      if (!modificator
               .ApplyToRecursiveQuery(stmt.get(),
                                      rules::RuleAction::kMultiLevelExpand)
               .ok()) {
        return 1;
      }

      ResultSet result;
      Clock::time_point start = Clock::now();
      Status status = db.ExecuteStatement(*stmt, &result);
      Clock::time_point end = Clock::now();
      if (!status.ok()) {
        std::fprintf(stderr, "query failed: %s\n", status.ToString().c_str());
        return 1;
      }
      std::printf("α=%d,ω=%d %8s %-8s %10.2f %16zu %12zu\n", tree.depth,
                  tree.branching, "", cached ? "on" : "off",
                  std::chrono::duration<double>(end - start).count() * 1000,
                  db.last_stats().subquery_evaluations,
                  db.last_stats().subquery_cache_hits);
    }
  }
  std::printf("\n");
  return 0;
}

}  // namespace
}  // namespace pdm::bench

int main() { return pdm::bench::Run(); }
