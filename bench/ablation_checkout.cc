// Extension experiment (paper Section 6): check-out "cannot be
// represented in one single query". We compare the three flows —
// navigational (per-object updates), recursive retrieval + batched
// updates, and full function shipping via a stored procedure — on the
// simulated WAN.

#include <cstdio>

#include "bench_util.h"

namespace pdm::bench {
namespace {

int Run() {
  PrintBanner("Extension: check-out flows over the WAN (paper Section 6)");
  std::printf("%-18s %-20s %12s %12s %10s %10s\n", "shape", "method",
              "seconds", "round-trips", "objects", "success");

  const model::TreeParams shapes[] = {{3, 9, 0.6}, {9, 3, 0.6}, {5, 5, 0.6}};
  model::NetworkParams net{0.15, 256, 4096, 512};

  for (const model::TreeParams& tree : shapes) {
    for (client::CheckOutMethod method :
         {client::CheckOutMethod::kNavigational,
          client::CheckOutMethod::kRecursiveBatched,
          client::CheckOutMethod::kStoredProcedure}) {
      client::ExperimentConfig config = MakeExperimentConfig(tree, net);
      Result<std::unique_ptr<client::Experiment>> experiment =
          client::Experiment::Create(config);
      if (!experiment.ok()) return 1;
      std::unique_ptr<client::CheckOutClient> checkout =
          (*experiment)->MakeCheckOutClient();
      Result<client::CheckOutResult> result = checkout->CheckOut(
          (*experiment)->product().root_obid, method);
      if (!result.ok()) {
        std::fprintf(stderr, "check-out failed: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
      std::printf("α=%d,ω=%d %10s %-20s %12.2f %12zu %10zu %10s\n",
                  tree.depth, tree.branching, "",
                  std::string(client::CheckOutMethodName(method)).c_str(),
                  result->seconds(), result->wan.round_trips,
                  result->objects, result->success ? "yes" : "no");
    }
  }
  std::printf("\n");
  return 0;
}

}  // namespace
}  // namespace pdm::bench

int main() { return pdm::bench::Run(); }
