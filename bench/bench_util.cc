#include "bench_util.h"

#include <chrono>
#include <cstdio>

#include "common/string_util.h"

namespace pdm::bench {

client::ExperimentConfig MakeExperimentConfig(const model::TreeParams& tree,
                                              const model::NetworkParams& net,
                                              uint64_t seed) {
  client::ExperimentConfig config;
  config.generator.depth = tree.depth;
  config.generator.branching = tree.branching;
  config.generator.sigma = tree.sigma;
  config.generator.seed = seed;
  config.wan.latency_s = net.latency_s;
  config.wan.dtr_kbit = net.dtr_kbit;
  config.wan.packet_bytes = static_cast<size_t>(net.packet_bytes);
  config.client.node_bytes = static_cast<size_t>(net.node_bytes);
  return config;
}

Result<SimCell> SimulateCell(const model::TreeParams& tree,
                             const model::NetworkParams& net,
                             model::StrategyKind strategy,
                             model::ActionKind action, uint64_t seed) {
  using Clock = std::chrono::steady_clock;
  client::ExperimentConfig config = MakeExperimentConfig(tree, net, seed);
  Clock::time_point start = Clock::now();
  PDM_ASSIGN_OR_RETURN(std::unique_ptr<client::Experiment> experiment,
                       client::Experiment::Create(config));
  PDM_ASSIGN_OR_RETURN(client::ActionResult result,
                       experiment->RunAction(strategy, action));
  Clock::time_point end = Clock::now();

  SimCell cell;
  cell.latency = result.wan.latency_seconds;
  cell.transfer = result.wan.transfer_seconds;
  cell.total = result.wan.total_seconds();
  cell.round_trips = result.wan.round_trips;
  cell.transmitted_rows = result.transmitted_rows;
  cell.visible_nodes = result.visible_nodes;
  cell.wall_seconds = std::chrono::duration<double>(end - start).count();
  return cell;
}

std::string Sec(double seconds, int width) {
  return StrFormat("%*.2f", width, seconds);
}

void PrintBanner(const std::string& title) {
  std::string rule(title.size() + 4, '=');
  std::printf("%s\n| %s |\n%s\n", rule.c_str(), title.c_str(), rule.c_str());
}

namespace {

// Paper totals, transcribed from the ICDE 2001 text. Order:
// [net 0..2 = (150ms,256) (150ms,512) (50ms,1024)]
// [tree 0..2 = (α3,ω9) (α9,ω3) (α7,ω5)]
// [action 0..2 = Query, Expand, MLE].
constexpr double kTable2[3][3][3] = {
    {{13.28, 0.63, 99.10}, {461.78, 0.53, 228.53}, {1526.35, 0.57, 1684.39}},
    {{6.79, 0.46, 78.50}, {231.04, 0.42, 181.02}, {763.32, 0.43, 1334.20}},
    {{3.35, 0.18, 29.60}, {115.47, 0.16, 68.26}, {381.61, 0.17, 503.10}},
};

constexpr double kTable3[3][3][3] = {
    {{3.49, 0.57, 97.10}, {7.43, 0.52, 223.90}, {51.72, 0.53, 1650.23}},
    {{1.89, 0.44, 77.50}, {3.86, 0.41, 178.71}, {26.01, 0.42, 1317.12}},
    {{0.90, 0.17, 29.10}, {1.88, 0.15, 67.10}, {12.96, 0.16, 494.56}},
};

constexpr double kTable4[3][3] = {
    {3.49, 7.43, 51.72},
    {1.89, 3.86, 26.01},
    {0.90, 1.88, 12.96},
};

}  // namespace

const double (*PaperTable2Totals())[3][3] { return kTable2; }
const double (*PaperTable3Totals())[3][3] { return kTable3; }
const double (*PaperTable4MleTotals())[3] { return kTable4; }

}  // namespace pdm::bench
