// Extension table (DESIGN.md 5e): cross-client statement coalescing.
// N identical navigational sessions replay concurrently through the
// shared admission queue; the server deduplicates identical statements
// within each execution wave, so per-statement parse/plan work shrinks
// as the client count grows while every client still receives the
// byte-identical tree over unchanged per-client round trips.
//
// Sweeps client count x coalesce window and reports, per cell:
//   * waves formed, statements submitted, unique engine executions
//   * measured amortization (statements / unique) vs the closed-form
//     plan 1 / CoalescedParseCostFactor (model/cost_model.h)
//   * fingerprint (lexer) passes per statement — exactly 1.0 proves the
//     single-fingerprint batch path (no statement is ever lexed twice)
// and fails non-zero if any client's tree deviates from the solo
// uncoalesced reference run, or if an unbounded-window cell does not
// amortize by exactly the client count.

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "server/admission_queue.h"
#include "sql/fingerprint.h"

namespace pdm::bench {
namespace {

using model::ActionKind;
using model::StrategyKind;

int Run() {
  PrintBanner(
      "Multi-client extension: MLE coalescing across concurrent sessions");

  const model::TreeParams tree{3, 9, 0.6};
  const model::NetworkParams net;

  // Solo uncoalesced reference: same deployment, one client, no queue.
  client::ExperimentConfig config = MakeExperimentConfig(tree, net);
  Result<std::unique_ptr<client::Experiment>> reference_experiment =
      client::Experiment::Create(config);
  if (!reference_experiment.ok()) {
    std::fprintf(stderr, "reference experiment failed: %s\n",
                 reference_experiment.status().ToString().c_str());
    return 1;
  }
  Result<client::ActionResult> reference =
      (*reference_experiment)
          ->RunAction(StrategyKind::kBatchedEarly,
                      ActionKind::kMultiLevelExpand);
  if (!reference.ok()) {
    std::fprintf(stderr, "reference run failed: %s\n",
                 reference.status().ToString().c_str());
    return 1;
  }
  const std::string reference_tree = reference->tree.ToString(1 << 20);

  std::printf("%-8s %-8s | %6s %7s %7s | %8s %8s | %8s | %s\n", "clients",
              "window", "waves", "stmts", "unique", "amort", "planned",
              "fp/stmt", "trees");

  for (size_t clients : {1u, 2u, 4u, 8u}) {
    for (size_t window : {0u, 16u, 64u}) {
      // Fresh deployment per cell: cold plan cache, empty logs.
      Result<std::unique_ptr<client::Experiment>> experiment =
          client::Experiment::Create(config);
      if (!experiment.ok()) {
        std::fprintf(stderr, "experiment failed: %s\n",
                     experiment.status().ToString().c_str());
        return 1;
      }
      client::Experiment& e = **experiment;
      e.server().mutable_config().coalesce_window = window;
      e.server().mutable_config().batch_threads = 4;

      client::MultiClientOptions options;
      options.clients = clients;
      options.strategy = StrategyKind::kBatchedEarly;
      options.action = ActionKind::kMultiLevelExpand;

      const uint64_t fp_before = sql::FingerprintCallCount();
      Result<client::MultiClientResult> run =
          client::RunMultiClientAction(e, options);
      const uint64_t fp_after = sql::FingerprintCallCount();
      if (!run.ok()) {
        std::fprintf(stderr, "multi-client run failed: %s\n",
                     run.status().ToString().c_str());
        return 1;
      }

      // Every client's tree and wire accounting must match the solo
      // uncoalesced run: coalescing shares server CPU, nothing else.
      bool identical = true;
      for (const client::ActionResult& r : run->per_client) {
        if (r.tree.ToString(1 << 20) != reference_tree ||
            r.wan.round_trips != reference->wan.round_trips ||
            r.transmitted_rows != reference->transmitted_rows) {
          identical = false;
        }
      }

      double amort = run->DedupFactor();
      double planned =
          1.0 / model::CoalescedParseCostFactor(clients, tree, window);
      double fp_per_stmt =
          run->statements == 0
              ? 0.0
              : static_cast<double>(fp_after - fp_before) /
                    static_cast<double>(run->statements);

      std::printf("%-8zu %-8s | %6zu %7zu %7zu | %8.2f %8.2f | %8.2f | %s\n",
                  clients, window == 0 ? "inf" : std::to_string(window).c_str(),
                  run->waves, run->statements, run->unique_statements, amort,
                  planned, fp_per_stmt, identical ? "identical" : "DEVIATE");

      if (!identical) {
        std::fprintf(stderr,
                     "FAIL: coalesced run not byte-identical to the solo "
                     "reference (clients=%zu window=%zu)\n",
                     clients, window);
        return 1;
      }
      // Unbounded window + identical sessions = full lockstep: every
      // wave holds one level-batch per client, so amortization is
      // exactly the client count.
      if (window == 0 && std::fabs(amort - static_cast<double>(clients)) >
                             1e-9) {
        std::fprintf(stderr,
                     "FAIL: unbounded window amortization %.4f != clients "
                     "%zu\n",
                     amort, clients);
        return 1;
      }
      // The wave path lexes each statement exactly once (the batch-path
      // fingerprint is reused for classification, dedup and plan-cache
      // lookup).
      if (std::fabs(fp_per_stmt - 1.0) > 1e-9) {
        std::fprintf(stderr, "FAIL: %.4f fingerprint passes per statement\n",
                     fp_per_stmt);
        return 1;
      }
    }
  }
  std::printf(
      "\n(amort = statements per engine execution; planned = closed-form\n"
      "1/CoalescedParseCostFactor. Bounded windows deviate from the plan\n"
      "when submissions straddle waves — the plan assumes exact level\n"
      "alignment. fp/stmt = 1.0: each statement is lexed exactly once.)\n\n");
  return 0;
}

}  // namespace
}  // namespace pdm::bench

int main() { return pdm::bench::Run(); }
