// Extension table (DESIGN.md 5l): the worldwide multi-site topology —
// three remote sites, each with a local read replica fed by an
// asynchronous replication stream over the site's own WAN link, driven
// by a deterministic open-loop arrival generator (Poisson-like
// interarrivals, ~1000 simulated clients per site, reads local,
// writes through to the primary).
//
// Reports, per site: arrivals (read/write split), action-latency
// p50/p99, queue-wait p50/p99, utilization of the c simulated servers,
// replication shipments and lag (mean/max), and the worst relative gap
// between a non-queued shipment's simulated lag and the closed form
// model::ReplicaStalenessSeconds.
//
// Fails non-zero if
//   * the arrival schedules or the replica states differ across
//     batch_threads (the open-loop generator must be a pure function of
//     the seed — never of thread count or interleaving),
//   * any replica diverges from the quiesced primary (expand tree or
//     full replicated-table contents, byte-compared),
//   * any site's reported max replication lag exceeds the bound,
//   * the closed-form staleness term misses a non-queued shipment's
//     simulated lag by more than the reconciliation gate (1%).
//
// --metrics PATH additionally writes the versioned metrics JSON
// snapshot with the per-site histogram families
// ("openloop.action_seconds"{site}, "openloop.queue_wait_seconds"{site},
// "replication.lag_seconds"{site}) for the CI artifact + metrics_diff
// presence gate.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "client/multisite.h"
#include "obs/metrics.h"
#include "obs/snapshot.h"

namespace pdm::bench {
namespace {

/// Reconciliation gate on the staleness closed form, in percent.
constexpr double kStalenessGatePct = 1.0;

/// Hard bound on any site's reported max replication lag, in simulated
/// seconds. The slowest configured link (ISDN-grade, 64 kbit/s,
/// 0.4 s one-way latency) ships a one-statement batch in well under
/// 1.5 s; channel queueing can stack a few shipments. 10 s of staleness
/// is the "bounded" claim of the acceptance gate with generous margin —
/// a replication stall or runaway payload blows straight past it.
constexpr double kMaxLagBoundS = 10.0;

client::MultiSiteOptions MakeOptions(size_t batch_threads) {
  const model::TreeParams tree{3, 8, 0.6};
  const model::NetworkParams net;
  client::ExperimentConfig base = MakeExperimentConfig(tree, net);

  client::MultiSiteOptions options;
  options.generator = base.generator;
  options.primary_wan = base.wan;
  options.seed = 42;
  options.batch_threads = batch_threads;

  // Three sites on the paper's WAN grid corners: a well-connected
  // continental site, a far overseas site on a thin line, and a nearby
  // site on a mid-grade link. LANs are uniform campus links.
  client::SiteSpec emea;
  emea.name = "emea";
  emea.wan.latency_s = 0.15;
  emea.wan.dtr_kbit = 256;
  client::SiteSpec apac;
  apac.name = "apac";
  apac.wan.latency_s = 0.4;
  apac.wan.dtr_kbit = 64;
  client::SiteSpec amer;
  amer.name = "amer";
  amer.wan.latency_s = 0.05;
  amer.wan.dtr_kbit = 1024;
  for (client::SiteSpec* site : {&emea, &apac, &amer}) {
    site->lan.latency_s = 0.001;
    site->lan.dtr_kbit = 10 * 1024;
    // Stable open-loop operating point: write service at the slowest
    // site is ~0.9 s, so the per-site write arrival rate (rate *
    // write_fraction = 0.6/s) keeps c=1 utilization well below 1 and
    // the queue from growing without bound.
    site->clients = 1000;
    site->arrival_rate_hz = 12;
    site->arrivals = 150;
    site->write_fraction = 0.05;
  }
  options.sites = {emea, apac, amer};
  return options;
}

struct RunOutcome {
  client::MultiSiteResult result;
  /// Replica expand trees after quiesce, per site — the cross-thread
  /// determinism fingerprint.
  std::vector<std::string> replica_trees;
};

Result<RunOutcome> RunDeployment(const client::MultiSiteOptions& options) {
  PDM_ASSIGN_OR_RETURN(std::unique_ptr<client::MultiSiteDeployment> deployment,
                       client::MultiSiteDeployment::Create(options));
  RunOutcome outcome;
  PDM_ASSIGN_OR_RETURN(outcome.result, deployment->RunOpenLoop());
  PDM_RETURN_NOT_OK(deployment->VerifyReplicaConsistency());
  for (size_t s = 0; s < deployment->num_sites(); ++s) {
    PDM_ASSIGN_OR_RETURN(
        client::ActionResult expand,
        deployment->primary().MakeStrategyOn(
            &deployment->read_connection(s), options.read_strategy)
            ->MultiLevelExpand(deployment->primary().product().root_obid));
    outcome.replica_trees.push_back(expand.tree.ToString(1 << 20));
  }
  return outcome;
}

int Run(const std::string& metrics_path) {
  PrintBanner("Multi-site extension: replicated sites, open-loop arrivals");

  // Determinism gate across thread counts: the schedules are generated
  // up front and must be byte-for-byte identical functions of the seed.
  const client::MultiSiteOptions options1 = MakeOptions(1);
  const client::MultiSiteOptions options4 = MakeOptions(4);
  int failures = 0;
  for (size_t s = 0; s < options1.sites.size(); ++s) {
    const std::vector<client::ArrivalEvent> a =
        client::GenerateArrivalSchedule(options1.sites[s], s, options1.seed);
    const std::vector<client::ArrivalEvent> b =
        client::GenerateArrivalSchedule(options4.sites[s], s, options4.seed);
    bool identical = a.size() == b.size();
    for (size_t i = 0; identical && i < a.size(); ++i) {
      identical = a[i].arrival_s == b[i].arrival_s &&
                  a[i].client_id == b[i].client_id &&
                  a[i].is_write == b[i].is_write;
    }
    if (!identical) {
      std::fprintf(stderr,
                   "FAIL: site %zu arrival schedule differs across "
                   "batch_threads\n",
                   s);
      ++failures;
    }
  }

  Result<RunOutcome> run1 = RunDeployment(options1);
  if (!run1.ok()) {
    std::fprintf(stderr, "FAIL: batch_threads=1 run: %s\n",
                 run1.status().ToString().c_str());
    return 1;
  }
  Result<RunOutcome> run4 = RunDeployment(options4);
  if (!run4.ok()) {
    std::fprintf(stderr, "FAIL: batch_threads=4 run: %s\n",
                 run4.status().ToString().c_str());
    return 1;
  }

  // Replica end states must be identical across thread counts: same
  // commit clock, same expand trees. (Queue waits and lag legitimately
  // differ — c changes — but the data may not.)
  if (run1->result.primary_commit_ts != run4->result.primary_commit_ts) {
    std::fprintf(stderr,
                 "FAIL: primary commit clock differs across batch_threads "
                 "(%llu vs %llu)\n",
                 static_cast<unsigned long long>(
                     run1->result.primary_commit_ts),
                 static_cast<unsigned long long>(
                     run4->result.primary_commit_ts));
    ++failures;
  }
  for (size_t s = 0; s < run1->replica_trees.size(); ++s) {
    if (run1->replica_trees[s] != run4->replica_trees[s]) {
      std::fprintf(stderr,
                   "FAIL: site %zu replica tree differs across "
                   "batch_threads\n",
                   s);
      ++failures;
    }
  }

  const client::MultiSiteResult& result = run1->result;
  std::printf(
      "%-6s %5s %5s %4s | %8s %8s | %8s %8s | %5s | %5s %6s %8s %8s %5s | "
      "%8s\n",
      "site", "arrv", "reads", "wr", "p50(s)", "p99(s)", "qw50(s)",
      "qw99(s)", "util", "ships", "stmts", "lag_m(s)", "lag_x(s)", "qud",
      "model%");
  for (const client::SiteReport& site : result.sites) {
    std::printf(
        "%-6s %5zu %5zu %4zu | %8.3f %8.3f | %8.3f %8.3f | %4.0f%% | %5zu "
        "%6zu %8.3f %8.3f %5zu | %7.3f%%\n",
        site.name.c_str(), site.arrivals, site.reads, site.writes,
        site.p50_latency_s, site.p99_latency_s, site.p50_queue_wait_s,
        site.p99_queue_wait_s, 100.0 * site.utilization, site.shipments,
        site.shipped_statements, site.mean_lag_s, site.max_lag_s,
        site.queued_shipments, site.staleness_model_err_pct);
  }
  std::printf(
      "\n(total arrivals %zu; primary commit clock %llu; p50/p99 = open-loop "
      "action latency,\nqw = queue wait on c=%zu simulated servers; model%% = "
      "worst closed-form staleness gap\nover non-queued shipments, gate "
      "%.1f%%; lag bound %.1f s)\n",
      result.total_arrivals,
      static_cast<unsigned long long>(result.primary_commit_ts),
      options1.batch_threads, kStalenessGatePct, kMaxLagBoundS);

  for (const client::SiteReport& site : result.sites) {
    if (site.applied_commit_ts != result.primary_commit_ts) {
      std::fprintf(stderr, "FAIL: site %s not caught up (%llu vs %llu)\n",
                   site.name.c_str(),
                   static_cast<unsigned long long>(site.applied_commit_ts),
                   static_cast<unsigned long long>(result.primary_commit_ts));
      ++failures;
    }
    if (site.writes > 0 && site.shipped_statements == 0) {
      std::fprintf(stderr, "FAIL: site %s shipped no statements despite "
                   "%zu writes\n",
                   site.name.c_str(), site.writes);
      ++failures;
    }
    if (site.max_lag_s > kMaxLagBoundS) {
      std::fprintf(stderr,
                   "FAIL: site %s max replication lag %.3f s exceeds the "
                   "%.1f s bound\n",
                   site.name.c_str(), site.max_lag_s, kMaxLagBoundS);
      ++failures;
    }
    if (site.staleness_model_err_pct > kStalenessGatePct) {
      std::fprintf(stderr,
                   "FAIL: site %s staleness closed form off by %.3f%% "
                   "(gate %.1f%%)\n",
                   site.name.c_str(), site.staleness_model_err_pct,
                   kStalenessGatePct);
      ++failures;
    }
  }

  if (!metrics_path.empty()) {
    obs::MetricsSnapshot snapshot =
        obs::CaptureMetricsSnapshot("table_multisite");
    Status written = obs::WriteSnapshotJsonFile(metrics_path, snapshot);
    if (!written.ok()) {
      std::fprintf(stderr, "metrics export: %s\n",
                   written.ToString().c_str());
      return 1;
    }
    std::printf("\nmetrics snapshot written to %s (%zu log histograms)\n",
                metrics_path.c_str(), snapshot.log_histograms.size());
  }

  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace pdm::bench

int main(int argc, char** argv) {
  std::string metrics_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc) {
      metrics_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--metrics PATH]\n", argv[0]);
      return 2;
    }
  }
  return pdm::bench::Run(metrics_path);
}
