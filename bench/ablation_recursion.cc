// Ablation: semi-naive vs naive recursive CTE evaluation (the design
// choice behind the paper's reliance on "efficient implementations for
// the processing of recursive SQL queries", reference [10]).
//
// For each shape the same recursive tree query runs under both modes on
// a local Database (no WAN); we report wall time, iteration count and
// CTE rows touched — naive evaluation re-derives the whole frontier
// every round, so its row traffic grows quadratically with depth.

#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "rules/query_builder.h"
#include "rules/query_modificator.h"

namespace pdm::bench {
namespace {

using Clock = std::chrono::steady_clock;

struct Shape {
  int depth;
  int branching;
  double sigma;
  const char* label;
};

int Run() {
  PrintBanner("Ablation: semi-naive vs naive recursion");
  std::printf("%-22s %-10s %10s %12s %14s\n", "shape", "mode", "wall-ms",
              "iterations", "cte-rows-read");

  const Shape shapes[] = {
      {3, 9, 0.6, "bushy α=3 ω=9"},
      {7, 5, 0.6, "paper α=7 ω=5"},
      {9, 3, 0.6, "deep α=9 ω=3"},
      {64, 1, 1.0, "chain α=64 ω=1"},
  };
  for (const Shape& shape : shapes) {
    for (bool semi_naive : {true, false}) {
      model::TreeParams tree{shape.depth, shape.branching, shape.sigma};
      model::NetworkParams net;  // irrelevant: local execution
      client::ExperimentConfig config = MakeExperimentConfig(tree, net);
      Result<std::unique_ptr<client::Experiment>> experiment =
          client::Experiment::Create(config);
      if (!experiment.ok()) {
        std::fprintf(stderr, "setup failed: %s\n",
                     experiment.status().ToString().c_str());
        return 1;
      }
      Database& db = (*experiment)->server().database();
      db.options().exec.semi_naive_recursion = semi_naive;

      std::unique_ptr<sql::SelectStmt> stmt =
          rules::BuildRecursiveTreeQuery((*experiment)->product().root_obid);
      rules::QueryModificator modificator(&(*experiment)->rule_table(),
                                          (*experiment)->user());
      Result<rules::ModificationSummary> mod =
          modificator.ApplyToRecursiveQuery(
              stmt.get(), rules::RuleAction::kMultiLevelExpand);
      if (!mod.ok()) {
        std::fprintf(stderr, "modification failed: %s\n",
                     mod.status().ToString().c_str());
        return 1;
      }

      ResultSet result;
      Clock::time_point start = Clock::now();
      Status status = db.ExecuteStatement(*stmt, &result);
      Clock::time_point end = Clock::now();
      if (!status.ok()) {
        std::fprintf(stderr, "query failed: %s\n",
                     status.ToString().c_str());
        return 1;
      }
      std::printf("%-22s %-10s %10.2f %12zu %14zu\n", shape.label,
                  semi_naive ? "semi-naive" : "naive",
                  std::chrono::duration<double>(end - start).count() * 1000,
                  db.last_stats().recursion_iterations,
                  db.last_stats().cte_rows_scanned);
    }
  }
  std::printf("\n");
  return 0;
}

}  // namespace
}  // namespace pdm::bench

int main() { return pdm::bench::Run(); }
