#ifndef PDM_BENCH_FIG_BARS_H_
#define PDM_BENCH_FIG_BARS_H_

#include "bench_util.h"

namespace pdm::bench {

/// Reproduces the paper's Figure 4 / Figure 5 bar charts: response times
/// of Query / Expand / MLE under the three regimes at one fixed network
/// configuration, printed as a table plus ASCII bars. Returns non-zero
/// on failure.
int RunFigureBars(const char* title, const model::TreeParams& tree,
                  const model::NetworkParams& net);

}  // namespace pdm::bench

#endif  // PDM_BENCH_FIG_BARS_H_
