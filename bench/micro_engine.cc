// google-benchmark microbenchmarks for the SQL engine substrate:
// lexing/parsing, point lookups, joins, recursive CTE evaluation, and
// the rule modificator. These measure local engine cost (the component
// the paper deliberately ignores: "local query evaluation costs were
// ignored ... transmission costs are the dominating limitation factor").

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "rules/query_builder.h"
#include "rules/query_modificator.h"
#include "sql/fingerprint.h"
#include "sql/parser.h"

namespace pdm::bench {
namespace {

std::unique_ptr<client::Experiment>& SharedExperiment() {
  static std::unique_ptr<client::Experiment>* kExperiment = [] {
    model::TreeParams tree{5, 5, 0.6};
    model::NetworkParams net;
    Result<std::unique_ptr<client::Experiment>> experiment =
        client::Experiment::Create(MakeExperimentConfig(tree, net));
    if (!experiment.ok()) std::abort();
    return new std::unique_ptr<client::Experiment>(
        std::move(*experiment));
  }();
  return *kExperiment;
}

void BM_LexAndParseRecursiveQuery(benchmark::State& state) {
  std::string sql = rules::BuildRecursiveTreeQuery(1)->ToSql();
  for (auto _ : state) {
    Result<sql::StatementPtr> stmt = sql::ParseSql(sql);
    if (!stmt.ok()) state.SkipWithError("parse failed");
    benchmark::DoNotOptimize(stmt);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(sql.size()));
}
BENCHMARK(BM_LexAndParseRecursiveQuery);

void BM_RenderRecursiveQuery(benchmark::State& state) {
  std::unique_ptr<sql::SelectStmt> stmt = rules::BuildRecursiveTreeQuery(1);
  for (auto _ : state) {
    std::string sql = stmt->ToSql();
    benchmark::DoNotOptimize(sql);
  }
}
BENCHMARK(BM_RenderRecursiveQuery);

void BM_PointLookup(benchmark::State& state) {
  client::Experiment& e = *SharedExperiment();
  Database& db = e.server().database();
  std::string sql = "SELECT name FROM assy WHERE obid = " +
                    std::to_string(e.product().root_obid);
  for (auto _ : state) {
    Result<ResultSet> result = db.Query(sql);
    if (!result.ok()) state.SkipWithError("query failed");
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_PointLookup);

void BM_ExpandQuery(benchmark::State& state) {
  client::Experiment& e = *SharedExperiment();
  Database& db = e.server().database();
  std::string sql =
      rules::BuildExpandQuery(e.product().root_obid)->ToSql();
  for (auto _ : state) {
    Result<ResultSet> result = db.Query(sql);
    if (!result.ok()) state.SkipWithError("query failed");
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_ExpandQuery);

void BM_RecursiveMleLocal(benchmark::State& state) {
  client::Experiment& e = *SharedExperiment();
  Database& db = e.server().database();
  std::unique_ptr<sql::SelectStmt> stmt =
      rules::BuildRecursiveTreeQuery(e.product().root_obid);
  rules::QueryModificator modificator(&e.rule_table(), e.user());
  if (!modificator
           .ApplyToRecursiveQuery(stmt.get(),
                                  rules::RuleAction::kMultiLevelExpand)
           .ok()) {
    state.SkipWithError("modification failed");
    return;
  }
  std::string sql = stmt->ToSql();
  for (auto _ : state) {
    Result<ResultSet> result = db.Query(sql);
    if (!result.ok()) state.SkipWithError("query failed");
    benchmark::DoNotOptimize(result);
  }
  state.counters["result_rows"] = static_cast<double>(
      db.Query(sql)->num_rows());
}
BENCHMARK(BM_RecursiveMleLocal);

void BM_QueryModification(benchmark::State& state) {
  client::Experiment& e = *SharedExperiment();
  rules::QueryModificator modificator(&e.rule_table(), e.user());
  for (auto _ : state) {
    std::unique_ptr<sql::SelectStmt> stmt =
        rules::BuildRecursiveTreeQuery(e.product().root_obid);
    Result<rules::ModificationSummary> summary =
        modificator.ApplyToRecursiveQuery(
            stmt.get(), rules::RuleAction::kMultiLevelExpand);
    if (!summary.ok()) state.SkipWithError("modification failed");
    benchmark::DoNotOptimize(stmt);
  }
}
BENCHMARK(BM_QueryModification);

/// Parent obids of the shared product, the navigation workload's
/// rotating parameter.
const std::vector<int64_t>& ExpandParents() {
  static const std::vector<int64_t>* kParents = [] {
    Database& db = SharedExperiment()->server().database();
    Result<ResultSet> rs =
        db.Query("SELECT DISTINCT left FROM link ORDER BY 1");
    if (!rs.ok()) std::abort();
    auto* parents = new std::vector<int64_t>();
    for (size_t i = 0; i < rs->num_rows(); ++i) {
      parents->push_back(rs->At(i, 0).int64_value());
    }
    return parents;
  }();
  return *kParents;
}

/// Server CPU per navigational expand, plan cache on vs off. The SQL
/// text changes every iteration (different parent obid), so cache-on
/// exercises fingerprint + literal substitution against a cached plan
/// while cache-off re-lexes/parses/binds — the paper's repeated
/// "isolated SQL queries" pattern seen by the server. Results are
/// verified byte-identical between the two modes before timing.
void ExpandBenchmark(benchmark::State& state, bool use_cache) {
  client::Experiment& e = *SharedExperiment();
  Database& db = e.server().database();
  const std::vector<int64_t>& parents = ExpandParents();

  const bool saved = db.options().use_plan_cache;
  for (int64_t parent : parents) {
    std::string sql = rules::BuildExpandQuery(parent)->ToSql();
    db.options().use_plan_cache = false;
    Result<ResultSet> cold = db.Query(sql);
    db.options().use_plan_cache = true;
    Result<ResultSet> warm = db.Query(sql);
    if (!cold.ok() || !warm.ok() ||
        cold->ToString(1 << 20) != warm->ToString(1 << 20)) {
      db.options().use_plan_cache = saved;
      state.SkipWithError("cached result differs from cold result");
      return;
    }
  }

  db.options().use_plan_cache = use_cache;
  const PlanCacheStats before = db.plan_cache().stats();
  size_t next = 0;
  for (auto _ : state) {
    std::string sql =
        rules::BuildExpandQuery(parents[next])->ToSql();
    next = (next + 1) % parents.size();
    Result<ResultSet> result = db.Query(sql);
    if (!result.ok()) {
      db.options().use_plan_cache = saved;
      state.SkipWithError("query failed");
      return;
    }
    benchmark::DoNotOptimize(result);
  }
  db.options().use_plan_cache = saved;
  const PlanCacheStats& after = db.plan_cache().stats();
  state.counters["cache_hits"] =
      static_cast<double>(after.hits - before.hits);
  state.counters["cache_misses"] =
      static_cast<double>(after.misses - before.misses);
}

void BM_ExpandQueryPlanCacheOff(benchmark::State& state) {
  ExpandBenchmark(state, false);
}
BENCHMARK(BM_ExpandQueryPlanCacheOff);

void BM_ExpandQueryPlanCacheOn(benchmark::State& state) {
  ExpandBenchmark(state, true);
}
BENCHMARK(BM_ExpandQueryPlanCacheOn);

/// Server CPU for one level-sized batch of expand statements through
/// DbServer::ExecuteBatch, swept over batch_threads (DESIGN.md 5d).
/// Before timing, the swept thread count is verified byte-identical to
/// the serial (batch_threads = 1) execution, slot by slot.
void BM_BatchExpandThreads(benchmark::State& state) {
  client::Experiment& e = *SharedExperiment();
  DbServer& server = e.server();
  const std::vector<int64_t>& parents = ExpandParents();

  std::vector<std::string> statements;
  statements.reserve(parents.size());
  for (int64_t parent : parents) {
    statements.push_back(rules::BuildExpandQuery(parent)->ToSql());
  }

  const size_t threads = static_cast<size_t>(state.range(0));
  const size_t saved = server.config().batch_threads;
  auto run = [&](size_t n) {
    server.mutable_config().batch_threads = n;
    return server.ExecuteBatch(statements);
  };
  std::vector<DbServer::BatchStatementResult> reference = run(1);
  std::vector<DbServer::BatchStatementResult> probe = run(threads);
  for (size_t i = 0; i < statements.size(); ++i) {
    if (!reference[i].status.ok() || !probe[i].status.ok() ||
        reference[i].result.ToString(1 << 20) !=
            probe[i].result.ToString(1 << 20)) {
      server.mutable_config().batch_threads = saved;
      state.SkipWithError("parallel batch differs from serial batch");
      return;
    }
  }

  server.mutable_config().batch_threads = threads;
  const uint64_t fp_before = sql::FingerprintCallCount();
  size_t batches = 0;
  for (auto _ : state) {
    std::vector<DbServer::BatchStatementResult> results =
        server.ExecuteBatch(statements);
    benchmark::DoNotOptimize(results);
    ++batches;
  }
  const uint64_t fp_after = sql::FingerprintCallCount();
  server.mutable_config().batch_threads = saved;
  state.counters["statements"] = static_cast<double>(statements.size());
  // Lexer passes per statement: 1.0 since the batch path computes one
  // fingerprint per statement and reuses it for the read-only check and
  // the plan-cache lookup (it was 2.0 when those were separate passes).
  if (batches > 0) {
    state.counters["fingerprints_per_stmt"] =
        static_cast<double>(fp_after - fp_before) /
        static_cast<double>(batches * statements.size());
  }
}
BENCHMARK(BM_BatchExpandThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_FlatQueryScan(benchmark::State& state) {
  client::Experiment& e = *SharedExperiment();
  Database& db = e.server().database();
  for (auto _ : state) {
    Result<ResultSet> result =
        db.Query("SELECT COUNT(*) FROM comp WHERE acc = '+'");
    if (!result.ok()) state.SkipWithError("query failed");
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_FlatQueryScan);

void BM_AggregateGroupBy(benchmark::State& state) {
  client::Experiment& e = *SharedExperiment();
  Database& db = e.server().database();
  for (auto _ : state) {
    Result<ResultSet> result = db.Query(
        "SELECT material, COUNT(*), AVG(weight) FROM comp GROUP BY "
        "material");
    if (!result.ok()) state.SkipWithError("query failed");
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_AggregateGroupBy);

}  // namespace
}  // namespace pdm::bench

BENCHMARK_MAIN();
