// google-benchmark microbenchmarks for the SQL engine substrate:
// lexing/parsing, point lookups, joins, recursive CTE evaluation, and
// the rule modificator. These measure local engine cost (the component
// the paper deliberately ignores: "local query evaluation costs were
// ignored ... transmission costs are the dominating limitation factor").

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "rules/query_builder.h"
#include "rules/query_modificator.h"
#include "sql/parser.h"

namespace pdm::bench {
namespace {

std::unique_ptr<client::Experiment>& SharedExperiment() {
  static std::unique_ptr<client::Experiment>* kExperiment = [] {
    model::TreeParams tree{5, 5, 0.6};
    model::NetworkParams net;
    Result<std::unique_ptr<client::Experiment>> experiment =
        client::Experiment::Create(MakeExperimentConfig(tree, net));
    if (!experiment.ok()) std::abort();
    return new std::unique_ptr<client::Experiment>(
        std::move(*experiment));
  }();
  return *kExperiment;
}

void BM_LexAndParseRecursiveQuery(benchmark::State& state) {
  std::string sql = rules::BuildRecursiveTreeQuery(1)->ToSql();
  for (auto _ : state) {
    Result<sql::StatementPtr> stmt = sql::ParseSql(sql);
    if (!stmt.ok()) state.SkipWithError("parse failed");
    benchmark::DoNotOptimize(stmt);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(sql.size()));
}
BENCHMARK(BM_LexAndParseRecursiveQuery);

void BM_RenderRecursiveQuery(benchmark::State& state) {
  std::unique_ptr<sql::SelectStmt> stmt = rules::BuildRecursiveTreeQuery(1);
  for (auto _ : state) {
    std::string sql = stmt->ToSql();
    benchmark::DoNotOptimize(sql);
  }
}
BENCHMARK(BM_RenderRecursiveQuery);

void BM_PointLookup(benchmark::State& state) {
  client::Experiment& e = *SharedExperiment();
  Database& db = e.server().database();
  std::string sql = "SELECT name FROM assy WHERE obid = " +
                    std::to_string(e.product().root_obid);
  for (auto _ : state) {
    Result<ResultSet> result = db.Query(sql);
    if (!result.ok()) state.SkipWithError("query failed");
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_PointLookup);

void BM_ExpandQuery(benchmark::State& state) {
  client::Experiment& e = *SharedExperiment();
  Database& db = e.server().database();
  std::string sql =
      rules::BuildExpandQuery(e.product().root_obid)->ToSql();
  for (auto _ : state) {
    Result<ResultSet> result = db.Query(sql);
    if (!result.ok()) state.SkipWithError("query failed");
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_ExpandQuery);

void BM_RecursiveMleLocal(benchmark::State& state) {
  client::Experiment& e = *SharedExperiment();
  Database& db = e.server().database();
  std::unique_ptr<sql::SelectStmt> stmt =
      rules::BuildRecursiveTreeQuery(e.product().root_obid);
  rules::QueryModificator modificator(&e.rule_table(), e.user());
  if (!modificator
           .ApplyToRecursiveQuery(stmt.get(),
                                  rules::RuleAction::kMultiLevelExpand)
           .ok()) {
    state.SkipWithError("modification failed");
    return;
  }
  std::string sql = stmt->ToSql();
  for (auto _ : state) {
    Result<ResultSet> result = db.Query(sql);
    if (!result.ok()) state.SkipWithError("query failed");
    benchmark::DoNotOptimize(result);
  }
  state.counters["result_rows"] = static_cast<double>(
      db.Query(sql)->num_rows());
}
BENCHMARK(BM_RecursiveMleLocal);

void BM_QueryModification(benchmark::State& state) {
  client::Experiment& e = *SharedExperiment();
  rules::QueryModificator modificator(&e.rule_table(), e.user());
  for (auto _ : state) {
    std::unique_ptr<sql::SelectStmt> stmt =
        rules::BuildRecursiveTreeQuery(e.product().root_obid);
    Result<rules::ModificationSummary> summary =
        modificator.ApplyToRecursiveQuery(
            stmt.get(), rules::RuleAction::kMultiLevelExpand);
    if (!summary.ok()) state.SkipWithError("modification failed");
    benchmark::DoNotOptimize(stmt);
  }
}
BENCHMARK(BM_QueryModification);

void BM_FlatQueryScan(benchmark::State& state) {
  client::Experiment& e = *SharedExperiment();
  Database& db = e.server().database();
  for (auto _ : state) {
    Result<ResultSet> result =
        db.Query("SELECT COUNT(*) FROM comp WHERE acc = '+'");
    if (!result.ok()) state.SkipWithError("query failed");
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_FlatQueryScan);

void BM_AggregateGroupBy(benchmark::State& state) {
  client::Experiment& e = *SharedExperiment();
  Database& db = e.server().database();
  for (auto _ : state) {
    Result<ResultSet> result = db.Query(
        "SELECT material, COUNT(*), AVG(weight) FROM comp GROUP BY "
        "material");
    if (!result.ok()) state.SkipWithError("query failed");
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_AggregateGroupBy);

}  // namespace
}  // namespace pdm::bench

BENCHMARK_MAIN();
