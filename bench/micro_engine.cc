// google-benchmark microbenchmarks for the SQL engine substrate:
// lexing/parsing, point lookups, joins, recursive CTE evaluation, the
// rule modificator, and the row-vs-vectorized link-expansion scan grid.
// These measure local engine cost (the component the paper deliberately
// ignores: "local query evaluation costs were ignored ... transmission
// costs are the dominating limitation factor").
//
// Usage: micro_engine [--filter REGEX] [--csv PATH] [--json PATH]
//                     [--gate-vec-speedup MIN] [--gate-vec-join-speedup MIN]
//   --filter            shorthand for --benchmark_filter
//   --csv               write results as CSV to PATH (benchmark runs)
//                       or next to the stdout report (gate mode)
//   --json              gate mode only: also write the grid as JSON
//                       (the BENCH_vec_join.json CI artifact)
//   --gate-vec-speedup  skip google-benchmark: time the link-expansion
//                       scan on both engines, verify byte-identical
//                       results, and exit non-zero unless the
//                       vectorized path is at least MIN times faster.
//   --gate-vec-join-speedup
//                       same, for the join/aggregate grid (hash-join
//                       build, index join, GROUP BY and scalar
//                       aggregation, recursive expand).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "catalog/column_store.h"
#include "common/string_util.h"
#include "rules/query_builder.h"
#include "rules/query_modificator.h"
#include "sql/fingerprint.h"
#include "sql/parser.h"

namespace pdm::bench {
namespace {

std::unique_ptr<client::Experiment>& SharedExperiment() {
  static std::unique_ptr<client::Experiment>* kExperiment = [] {
    model::TreeParams tree{5, 5, 0.6};
    model::NetworkParams net;
    Result<std::unique_ptr<client::Experiment>> experiment =
        client::Experiment::Create(MakeExperimentConfig(tree, net));
    if (!experiment.ok()) std::abort();
    return new std::unique_ptr<client::Experiment>(
        std::move(*experiment));
  }();
  return *kExperiment;
}

void BM_LexAndParseRecursiveQuery(benchmark::State& state) {
  std::string sql = rules::BuildRecursiveTreeQuery(1)->ToSql();
  for (auto _ : state) {
    Result<sql::StatementPtr> stmt = sql::ParseSql(sql);
    if (!stmt.ok()) state.SkipWithError("parse failed");
    benchmark::DoNotOptimize(stmt);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(sql.size()));
}
BENCHMARK(BM_LexAndParseRecursiveQuery);

void BM_RenderRecursiveQuery(benchmark::State& state) {
  std::unique_ptr<sql::SelectStmt> stmt = rules::BuildRecursiveTreeQuery(1);
  for (auto _ : state) {
    std::string sql = stmt->ToSql();
    benchmark::DoNotOptimize(sql);
  }
}
BENCHMARK(BM_RenderRecursiveQuery);

void BM_PointLookup(benchmark::State& state) {
  client::Experiment& e = *SharedExperiment();
  Database& db = e.server().database();
  std::string sql = "SELECT name FROM assy WHERE obid = " +
                    std::to_string(e.product().root_obid);
  for (auto _ : state) {
    Result<ResultSet> result = db.Query(sql);
    if (!result.ok()) state.SkipWithError("query failed");
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_PointLookup);

void BM_ExpandQuery(benchmark::State& state) {
  client::Experiment& e = *SharedExperiment();
  Database& db = e.server().database();
  std::string sql =
      rules::BuildExpandQuery(e.product().root_obid)->ToSql();
  for (auto _ : state) {
    Result<ResultSet> result = db.Query(sql);
    if (!result.ok()) state.SkipWithError("query failed");
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_ExpandQuery);

void BM_RecursiveMleLocal(benchmark::State& state) {
  client::Experiment& e = *SharedExperiment();
  Database& db = e.server().database();
  std::unique_ptr<sql::SelectStmt> stmt =
      rules::BuildRecursiveTreeQuery(e.product().root_obid);
  rules::QueryModificator modificator(&e.rule_table(), e.user());
  if (!modificator
           .ApplyToRecursiveQuery(stmt.get(),
                                  rules::RuleAction::kMultiLevelExpand)
           .ok()) {
    state.SkipWithError("modification failed");
    return;
  }
  std::string sql = stmt->ToSql();
  for (auto _ : state) {
    Result<ResultSet> result = db.Query(sql);
    if (!result.ok()) state.SkipWithError("query failed");
    benchmark::DoNotOptimize(result);
  }
  state.counters["result_rows"] = static_cast<double>(
      db.Query(sql)->num_rows());
}
BENCHMARK(BM_RecursiveMleLocal);

void BM_QueryModification(benchmark::State& state) {
  client::Experiment& e = *SharedExperiment();
  rules::QueryModificator modificator(&e.rule_table(), e.user());
  for (auto _ : state) {
    std::unique_ptr<sql::SelectStmt> stmt =
        rules::BuildRecursiveTreeQuery(e.product().root_obid);
    Result<rules::ModificationSummary> summary =
        modificator.ApplyToRecursiveQuery(
            stmt.get(), rules::RuleAction::kMultiLevelExpand);
    if (!summary.ok()) state.SkipWithError("modification failed");
    benchmark::DoNotOptimize(stmt);
  }
}
BENCHMARK(BM_QueryModification);

/// Parent obids of the shared product, the navigation workload's
/// rotating parameter.
const std::vector<int64_t>& ExpandParents() {
  static const std::vector<int64_t>* kParents = [] {
    Database& db = SharedExperiment()->server().database();
    Result<ResultSet> rs =
        db.Query("SELECT DISTINCT left FROM link ORDER BY 1");
    if (!rs.ok()) std::abort();
    auto* parents = new std::vector<int64_t>();
    for (size_t i = 0; i < rs->num_rows(); ++i) {
      parents->push_back(rs->At(i, 0).int64_value());
    }
    return parents;
  }();
  return *kParents;
}

/// Server CPU per navigational expand, plan cache on vs off. The SQL
/// text changes every iteration (different parent obid), so cache-on
/// exercises fingerprint + literal substitution against a cached plan
/// while cache-off re-lexes/parses/binds — the paper's repeated
/// "isolated SQL queries" pattern seen by the server. Results are
/// verified byte-identical between the two modes before timing.
void ExpandBenchmark(benchmark::State& state, bool use_cache) {
  client::Experiment& e = *SharedExperiment();
  Database& db = e.server().database();
  const std::vector<int64_t>& parents = ExpandParents();

  const bool saved = db.options().use_plan_cache;
  for (int64_t parent : parents) {
    std::string sql = rules::BuildExpandQuery(parent)->ToSql();
    db.options().use_plan_cache = false;
    Result<ResultSet> cold = db.Query(sql);
    db.options().use_plan_cache = true;
    Result<ResultSet> warm = db.Query(sql);
    if (!cold.ok() || !warm.ok() ||
        cold->ToString(1 << 20) != warm->ToString(1 << 20)) {
      db.options().use_plan_cache = saved;
      state.SkipWithError("cached result differs from cold result");
      return;
    }
  }

  db.options().use_plan_cache = use_cache;
  const PlanCacheStats before = db.plan_cache().stats();
  size_t next = 0;
  for (auto _ : state) {
    std::string sql =
        rules::BuildExpandQuery(parents[next])->ToSql();
    next = (next + 1) % parents.size();
    Result<ResultSet> result = db.Query(sql);
    if (!result.ok()) {
      db.options().use_plan_cache = saved;
      state.SkipWithError("query failed");
      return;
    }
    benchmark::DoNotOptimize(result);
  }
  db.options().use_plan_cache = saved;
  const PlanCacheStats& after = db.plan_cache().stats();
  state.counters["cache_hits"] =
      static_cast<double>(after.hits - before.hits);
  state.counters["cache_misses"] =
      static_cast<double>(after.misses - before.misses);
}

void BM_ExpandQueryPlanCacheOff(benchmark::State& state) {
  ExpandBenchmark(state, false);
}
BENCHMARK(BM_ExpandQueryPlanCacheOff);

void BM_ExpandQueryPlanCacheOn(benchmark::State& state) {
  ExpandBenchmark(state, true);
}
BENCHMARK(BM_ExpandQueryPlanCacheOn);

/// Server CPU for one level-sized batch of expand statements through
/// DbServer::ExecuteBatch, swept over batch_threads (DESIGN.md 5d).
/// Before timing, the swept thread count is verified byte-identical to
/// the serial (batch_threads = 1) execution, slot by slot.
void BM_BatchExpandThreads(benchmark::State& state) {
  client::Experiment& e = *SharedExperiment();
  DbServer& server = e.server();
  const std::vector<int64_t>& parents = ExpandParents();

  std::vector<std::string> statements;
  statements.reserve(parents.size());
  for (int64_t parent : parents) {
    statements.push_back(rules::BuildExpandQuery(parent)->ToSql());
  }

  const size_t threads = static_cast<size_t>(state.range(0));
  const size_t saved = server.config().batch_threads;
  auto run = [&](size_t n) {
    server.mutable_config().batch_threads = n;
    return server.ExecuteBatch(statements);
  };
  std::vector<DbServer::BatchStatementResult> reference = run(1);
  std::vector<DbServer::BatchStatementResult> probe = run(threads);
  for (size_t i = 0; i < statements.size(); ++i) {
    if (!reference[i].status.ok() || !probe[i].status.ok() ||
        reference[i].result.ToString(1 << 20) !=
            probe[i].result.ToString(1 << 20)) {
      server.mutable_config().batch_threads = saved;
      state.SkipWithError("parallel batch differs from serial batch");
      return;
    }
  }

  server.mutable_config().batch_threads = threads;
  const uint64_t fp_before = sql::FingerprintCallCount();
  size_t batches = 0;
  for (auto _ : state) {
    std::vector<DbServer::BatchStatementResult> results =
        server.ExecuteBatch(statements);
    benchmark::DoNotOptimize(results);
    ++batches;
  }
  const uint64_t fp_after = sql::FingerprintCallCount();
  server.mutable_config().batch_threads = saved;
  state.counters["statements"] = static_cast<double>(statements.size());
  // Lexer passes per statement: 1.0 since the batch path computes one
  // fingerprint per statement and reuses it for the read-only check and
  // the plan-cache lookup (it was 2.0 when those were separate passes).
  if (batches > 0) {
    state.counters["fingerprints_per_stmt"] =
        static_cast<double>(fp_after - fp_before) /
        static_cast<double>(batches * statements.size());
  }
}
BENCHMARK(BM_BatchExpandThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// --- Row vs vectorized link-expansion scan (DESIGN.md 5i) -------------------

constexpr size_t kLinkScanRows = 100000;

/// Dedicated 100k-row link table for the hot scan cell. The effectivity
/// window predicate `eff_from <= K AND eff_to > K` is the paper's
/// link-expansion filter shape and — being a pure range conjunction —
/// never diverts to the equality-index row path, so both engines do an
/// honest full scan.
Database& LinkScanDb() {
  static Database* kDb = [] {
    auto* db = new Database();
    Status created = db->Execute(
        "CREATE TABLE biglink (obid INTEGER, left INTEGER, right INTEGER, "
        "eff_from INTEGER, eff_to INTEGER)");
    if (!created.ok()) std::abort();
    size_t next = 0;
    while (next < kLinkScanRows) {
      std::string sql = "INSERT INTO biglink VALUES ";
      const size_t batch = std::min<size_t>(1000, kLinkScanRows - next);
      for (size_t j = 0; j < batch; ++j) {
        const size_t i = next + j;
        const size_t from = i % 100;
        if (j > 0) sql += ", ";
        sql += StrFormat("(%zu, %zu, %zu, %zu, %zu)", i, i / 8, i + 1, from,
                         from + 10 + i % 37);
      }
      if (!db->Execute(sql).ok()) std::abort();
      next += batch;
    }
    return db;
  }();
  return *kDb;
}

std::string LinkScanSql(int64_t k) {
  return StrFormat(
      "SELECT left, right FROM biglink WHERE eff_from <= %lld AND "
      "eff_to > %lld",
      static_cast<long long>(k), static_cast<long long>(k));
}

constexpr size_t kObjRows = kLinkScanRows / 8;  // one obj per 8 links

/// Companion object table for the join/aggregate grid: biglink.left
/// ranges over 0..kObjRows-1, so `l.left = o.obid` is the paper's
/// link->object navigation join at benchmark scale.
void EnsureBigObj(Database* db) {
  if (db->Query("SELECT obid FROM bigobj LIMIT 1").ok()) return;
  Status created = db->Execute(
      "CREATE TABLE bigobj (obid INTEGER, grp INTEGER, weight DOUBLE)");
  if (!created.ok()) std::abort();
  size_t next = 0;
  while (next < kObjRows) {
    std::string sql = "INSERT INTO bigobj VALUES ";
    const size_t batch = std::min<size_t>(1000, kObjRows - next);
    for (size_t j = 0; j < batch; ++j) {
      const size_t i = next + j;
      if (j > 0) sql += ", ";
      sql += StrFormat("(%zu, %zu, %zu.5)", i, i % 100, i % 17);
    }
    if (!db->Execute(sql).ok()) std::abort();
    next += batch;
  }
}

/// One cell of the grid: the effectivity scan at cut point K (higher K
/// selects fewer rows), on one engine. Before timing, the two engines'
/// result trees are verified byte-identical for this K.
void LinkExpansionScan(benchmark::State& state, bool vectorized) {
  Database& db = LinkScanDb();
  const std::string sql = LinkScanSql(state.range(0));

  db.options().exec.vectorized_execution = false;
  Result<ResultSet> row_rs = db.Query(sql);
  db.options().exec.vectorized_execution = true;
  Result<ResultSet> vec_rs = db.Query(sql);
  if (!row_rs.ok() || !vec_rs.ok() ||
      row_rs->ToString(1 << 24) != vec_rs->ToString(1 << 24)) {
    state.SkipWithError("vectorized result differs from row result");
    return;
  }

  db.options().exec.vectorized_execution = vectorized;
  for (auto _ : state) {
    Result<ResultSet> result = db.Query(sql);
    if (!result.ok()) {
      db.options().exec.vectorized_execution = true;
      state.SkipWithError("query failed");
      return;
    }
    benchmark::DoNotOptimize(result);
  }
  db.options().exec.vectorized_execution = true;
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kLinkScanRows));
  state.counters["result_rows"] = static_cast<double>(vec_rs->num_rows());
  state.counters["vec_batches"] = static_cast<double>(
      vectorized ? (kLinkScanRows + kFragmentRows - 1) / kFragmentRows : 0);
}

void BM_LinkExpansionScanRow(benchmark::State& state) {
  LinkExpansionScan(state, /*vectorized=*/false);
}
BENCHMARK(BM_LinkExpansionScanRow)->Arg(10)->Arg(50)->Arg(90);

void BM_LinkExpansionScanVectorized(benchmark::State& state) {
  LinkExpansionScan(state, /*vectorized=*/true);
}
BENCHMARK(BM_LinkExpansionScanVectorized)->Arg(10)->Arg(50)->Arg(90);

void BM_FlatQueryScan(benchmark::State& state) {
  client::Experiment& e = *SharedExperiment();
  Database& db = e.server().database();
  for (auto _ : state) {
    Result<ResultSet> result =
        db.Query("SELECT COUNT(*) FROM comp WHERE acc = '+'");
    if (!result.ok()) state.SkipWithError("query failed");
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_FlatQueryScan);

void BM_AggregateGroupBy(benchmark::State& state) {
  client::Experiment& e = *SharedExperiment();
  Database& db = e.server().database();
  for (auto _ : state) {
    Result<ResultSet> result = db.Query(
        "SELECT material, COUNT(*), AVG(weight) FROM comp GROUP BY "
        "material");
    if (!result.ok()) state.SkipWithError("query failed");
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_AggregateGroupBy);

}  // namespace

/// CI gate: times the link-expansion scan grid on both engines with
/// plain steady_clock (no google-benchmark — the gate must stay cheap
/// and its output one CSV table), verifies byte-identical results, and
/// fails unless every cell's vectorized path is at least `min_speedup`
/// times faster than the row path. The CI floor is 3x; the calibrated
/// model target (per_row_scan_s / per_row_scan_vec_s) is 5x, which
/// local runs should meet.
int RunLinkExpansionGate(double min_speedup, const std::string& csv_path) {
  Database& db = LinkScanDb();
  constexpr int64_t kCuts[] = {10, 50, 90};
  constexpr int kRowIters = 5;
  constexpr int kVecIters = 15;

  auto best_seconds = [&](const std::string& sql, bool vectorized,
                          int iters) {
    db.options().exec.vectorized_execution = vectorized;
    double best = 1e300;
    for (int i = 0; i < iters; ++i) {
      const auto start = std::chrono::steady_clock::now();
      Result<ResultSet> result = db.Query(sql);
      const auto stop = std::chrono::steady_clock::now();
      if (!result.ok()) return -1.0;
      best = std::min(best, std::chrono::duration<double>(stop - start)
                                .count());
    }
    return best;
  };

  std::string csv =
      "cell,k,result_rows,row_s_per_query,vec_s_per_query,speedup\n";
  PrintBanner("micro_engine gate: vectorized link-expansion scan speedup");
  std::printf("%-20s %4s %12s %12s %12s %9s\n", "cell", "k", "result_rows",
              "row s/query", "vec s/query", "speedup");
  bool ok = true;
  for (int64_t k : kCuts) {
    const std::string sql = LinkScanSql(k);
    db.options().exec.vectorized_execution = false;
    Result<ResultSet> row_rs = db.Query(sql);
    db.options().exec.vectorized_execution = true;
    Result<ResultSet> vec_rs = db.Query(sql);
    if (!row_rs.ok() || !vec_rs.ok() ||
        row_rs->ToString(1 << 24) != vec_rs->ToString(1 << 24)) {
      std::fprintf(stderr, "k=%lld: engines disagree\n",
                   static_cast<long long>(k));
      return 1;
    }
    const double row_s = best_seconds(sql, /*vectorized=*/false, kRowIters);
    const double vec_s = best_seconds(sql, /*vectorized=*/true, kVecIters);
    db.options().exec.vectorized_execution = true;
    if (row_s < 0 || vec_s <= 0) {
      std::fprintf(stderr, "k=%lld: query failed\n",
                   static_cast<long long>(k));
      return 1;
    }
    const double speedup = row_s / vec_s;
    const bool cell_ok = speedup >= min_speedup;
    ok = ok && cell_ok;
    std::printf("%-20s %4lld %12zu %12.6f %12.6f %8.2fx%s\n",
                "link-expansion-scan", static_cast<long long>(k),
                vec_rs->num_rows(), row_s, vec_s, speedup,
                cell_ok ? "" : "  BELOW GATE");
    csv += StrFormat("link-expansion-scan,%lld,%zu,%.9f,%.9f,%.3f\n",
                     static_cast<long long>(k), vec_rs->num_rows(), row_s,
                     vec_s, speedup);
  }
  if (!csv_path.empty()) {
    std::FILE* f = std::fopen(csv_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", csv_path.c_str());
      return 1;
    }
    std::fputs(csv.c_str(), f);
    std::fclose(f);
    std::printf("csv written to %s\n", csv_path.c_str());
  }
  if (!ok) {
    std::fprintf(stderr, "\nvectorized speedup below the %.1fx gate\n",
                 min_speedup);
    return 1;
  }
  std::printf("\nall cells at or above the %.1fx gate\n", min_speedup);
  return 0;
}

/// CI gate for the join/aggregate tier (DESIGN.md 5j): times each grid
/// cell on both engines (best-of-N steady_clock), verifies the results
/// byte-identical per cell first, and fails unless every *gated* cell
/// clears `min_speedup`. Ungated cells (the index join, whose row path
/// already probes the shared lazy index, and the end-to-end recursive
/// expand) are reported for EXPERIMENTS.md but don't fail the run.
/// Writes the grid as CSV (--csv) and JSON (--json, the
/// BENCH_vec_join.json CI artifact).
int RunVecJoinGate(double min_speedup, const std::string& csv_path,
                   const std::string& json_path) {
  Database& db = LinkScanDb();
  EnsureBigObj(&db);

  struct Cell {
    const char* name;
    std::string sql;
    bool gated;
  };
  std::vector<Cell> cells = {
      {"hash-join-build",
       "SELECT l.left, o.grp FROM biglink AS l "
       "JOIN (SELECT obid, grp FROM bigobj WHERE grp < 50) AS o "
       "ON l.left = o.obid WHERE l.eff_from <= 50",
       true},
      {"index-join",
       "SELECT l.obid, o.grp FROM biglink AS l "
       "JOIN bigobj AS o ON l.left = o.obid",
       false},
      {"group-by-agg",
       "SELECT eff_from, COUNT(*), SUM(right), MIN(obid), MAX(obid) "
       "FROM biglink GROUP BY eff_from",
       true},
      {"scalar-agg",
       "SELECT COUNT(*), SUM(right), AVG(right) FROM biglink "
       "WHERE eff_from <= 50",
       true},
  };
  {
    // End-to-end payoff cell: the recursive multi-level expand over the
    // shared experiment product (per-level joins through the bridge).
    client::Experiment& e = *SharedExperiment();
    std::unique_ptr<sql::SelectStmt> stmt =
        rules::BuildRecursiveTreeQuery(e.product().root_obid);
    rules::QueryModificator modificator(&e.rule_table(), e.user());
    if (modificator
            .ApplyToRecursiveQuery(stmt.get(),
                                   rules::RuleAction::kMultiLevelExpand)
            .ok()) {
      cells.push_back({"recursive-mle", stmt->ToSql(), false});
    }
  }

  constexpr int kRowIters = 3;
  constexpr int kVecIters = 8;
  auto best_seconds = [](Database* target, const std::string& sql,
                         bool vectorized, int iters) {
    target->options().exec.vectorized_execution = vectorized;
    double best = 1e300;
    for (int i = 0; i < iters; ++i) {
      const auto start = std::chrono::steady_clock::now();
      Result<ResultSet> result = target->Query(sql);
      const auto stop = std::chrono::steady_clock::now();
      if (!result.ok()) return -1.0;
      best = std::min(best,
                      std::chrono::duration<double>(stop - start).count());
    }
    return best;
  };

  std::string csv =
      "cell,gated,result_rows,row_s_per_query,vec_s_per_query,speedup\n";
  std::string json = StrFormat("{\"gate\": %.2f, \"cells\": [", min_speedup);
  PrintBanner("micro_engine gate: vectorized join/aggregate speedup");
  std::printf("%-18s %6s %12s %12s %12s %9s\n", "cell", "gated",
              "result_rows", "row s/query", "vec s/query", "speedup");
  bool ok = true;
  bool first = true;
  for (const Cell& cell : cells) {
    // The recursive cell runs against the experiment database; the grid
    // cells against the dedicated benchmark tables.
    Database& target = std::string(cell.name) == "recursive-mle"
                           ? SharedExperiment()->server().database()
                           : db;
    target.options().exec.vectorized_execution = false;
    Result<ResultSet> row_rs = target.Query(cell.sql);
    target.options().exec.vectorized_execution = true;
    Result<ResultSet> vec_rs = target.Query(cell.sql);
    if (!row_rs.ok() || !vec_rs.ok() ||
        row_rs->ToString(1 << 24) != vec_rs->ToString(1 << 24)) {
      std::fprintf(stderr, "%s: engines disagree\n", cell.name);
      return 1;
    }
    const double row_s = best_seconds(&target, cell.sql, false, kRowIters);
    const double vec_s = best_seconds(&target, cell.sql, true, kVecIters);
    target.options().exec.vectorized_execution = true;
    if (row_s < 0 || vec_s <= 0) {
      std::fprintf(stderr, "%s: query failed\n", cell.name);
      return 1;
    }
    const double speedup = row_s / vec_s;
    const bool cell_ok = !cell.gated || speedup >= min_speedup;
    ok = ok && cell_ok;
    std::printf("%-18s %6s %12zu %12.6f %12.6f %8.2fx%s\n", cell.name,
                cell.gated ? "yes" : "no", vec_rs->num_rows(), row_s, vec_s,
                speedup, cell_ok ? "" : "  BELOW GATE");
    csv += StrFormat("%s,%s,%zu,%.9f,%.9f,%.3f\n", cell.name,
                     cell.gated ? "yes" : "no", vec_rs->num_rows(), row_s,
                     vec_s, speedup);
    json += StrFormat(
        "%s{\"cell\": \"%s\", \"gated\": %s, \"result_rows\": %zu, "
        "\"row_s\": %.9f, \"vec_s\": %.9f, \"speedup\": %.3f}",
        first ? "" : ", ", cell.name, cell.gated ? "true" : "false",
        vec_rs->num_rows(), row_s, vec_s, speedup);
    first = false;
  }
  json += "]}\n";
  if (!csv_path.empty()) {
    std::FILE* f = std::fopen(csv_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", csv_path.c_str());
      return 1;
    }
    std::fputs(csv.c_str(), f);
    std::fclose(f);
    std::printf("csv written to %s\n", csv_path.c_str());
  }
  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("json written to %s\n", json_path.c_str());
  }
  if (!ok) {
    std::fprintf(stderr,
                 "\nvectorized join/agg speedup below the %.1fx gate\n",
                 min_speedup);
    return 1;
  }
  std::printf("\nall gated cells at or above the %.1fx gate\n", min_speedup);
  return 0;
}

}  // namespace pdm::bench

int main(int argc, char** argv) {
  std::vector<char*> args = {argv[0]};
  std::string filter;
  std::string csv;
  std::string json;
  double gate = 0;
  double join_gate = 0;
  bool bad_usage = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto take = [&](const char* flag, std::string* out) {
      const std::string prefix = std::string(flag) + "=";
      if (arg.rfind(prefix, 0) == 0) {
        *out = arg.substr(prefix.size());
        return true;
      }
      if (arg == flag) {
        if (i + 1 >= argc) {
          bad_usage = true;
          return true;
        }
        *out = argv[++i];
        return true;
      }
      return false;
    };
    std::string gate_str;
    std::string join_gate_str;
    if (take("--filter", &filter) || take("--csv", &csv) ||
        take("--json", &json)) {
      continue;
    }
    if (take("--gate-vec-speedup", &gate_str)) {
      if (!gate_str.empty()) gate = std::atof(gate_str.c_str());
      if (gate <= 0) bad_usage = true;
      continue;
    }
    if (take("--gate-vec-join-speedup", &join_gate_str)) {
      if (!join_gate_str.empty()) join_gate = std::atof(join_gate_str.c_str());
      if (join_gate <= 0) bad_usage = true;
      continue;
    }
    args.push_back(argv[i]);  // google-benchmark flags pass through
  }
  if (bad_usage) {
    std::fprintf(stderr,
                 "usage: %s [--filter REGEX] [--csv PATH] [--json PATH] "
                 "[--gate-vec-speedup MIN] [--gate-vec-join-speedup MIN] "
                 "[benchmark flags]\n",
                 argv[0]);
    return 2;
  }
  if (gate > 0) return pdm::bench::RunLinkExpansionGate(gate, csv);
  if (join_gate > 0) {
    return pdm::bench::RunVecJoinGate(join_gate, csv, json);
  }

  std::string filter_flag;
  std::string out_flag;
  std::string fmt_flag;
  if (!filter.empty()) {
    filter_flag = "--benchmark_filter=" + filter;
    args.push_back(filter_flag.data());
  }
  if (!csv.empty()) {
    out_flag = "--benchmark_out=" + csv;
    fmt_flag = "--benchmark_out_format=csv";
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
