#include "paper_tables.h"

#include <cstdio>
#include <cmath>

namespace pdm::bench {

namespace {

using model::ActionKind;
using model::StrategyKind;

const char* TableName(StrategyKind strategy) {
  switch (strategy) {
    case StrategyKind::kNavigationalLate:
      return "Table 2: late rule evaluation (baseline)";
    case StrategyKind::kNavigationalEarly:
      return "Table 3: early rule evaluation (Approach 1)";
    case StrategyKind::kRecursive:
      return "Table 4: recursive queries + early evaluation (Approach 2)";
    case StrategyKind::kBatchedLate:
    case StrategyKind::kBatchedEarly:
      return "batched extension (no paper table; see table_batched)";
    case StrategyKind::kPipelinedLate:
    case StrategyKind::kPipelinedEarly:
      return "pipelined extension (no paper table; see table_pipelined)";
  }
  return "?";
}

double PaperValue(StrategyKind strategy, size_t net, size_t tree,
                  ActionKind action) {
  size_t a = static_cast<size_t>(action);
  switch (strategy) {
    case StrategyKind::kNavigationalLate:
      return PaperTable2Totals()[net][tree][a];
    case StrategyKind::kNavigationalEarly:
      return PaperTable3Totals()[net][tree][a];
    case StrategyKind::kRecursive:
      return PaperTable4MleTotals()[net][tree];
    case StrategyKind::kBatchedLate:
    case StrategyKind::kBatchedEarly:
    case StrategyKind::kPipelinedLate:
    case StrategyKind::kPipelinedEarly:
      return -1;  // extensions: the paper prints no such numbers
  }
  return -1;
}

}  // namespace

int RunPaperTable(StrategyKind strategy) {
  PrintBanner(TableName(strategy));
  std::printf(
      "%-18s %-7s %-6s | %9s %9s %9s | %6s %6s | %7s %7s\n",
      "network", "tree", "action", "paper", "model", "sim", "d-mod%",
      "d-sim%", "sav-mod", "sav-sim");

  std::vector<model::NetworkParams> nets = model::PaperNetworkScenarios();
  std::vector<model::TreeParams> trees = model::PaperTreeScenarios();
  std::vector<ActionKind> actions = {ActionKind::kQuery,
                                     ActionKind::kSingleLevelExpand,
                                     ActionKind::kMultiLevelExpand};
  if (strategy == StrategyKind::kRecursive) {
    actions = {ActionKind::kMultiLevelExpand};
  }

  double worst_sim_dev = 0;
  for (size_t n = 0; n < nets.size(); ++n) {
    for (size_t t = 0; t < trees.size(); ++t) {
      for (ActionKind action : actions) {
        double paper = PaperValue(strategy, n, t, action);
        model::ResponseTime predicted =
            model::Predict(strategy, action, trees[t], nets[n]);
        Result<SimCell> sim = SimulateCell(trees[t], nets[n], strategy, action);
        if (!sim.ok()) {
          std::fprintf(stderr, "simulation failed: %s\n",
                       sim.status().ToString().c_str());
          return 1;
        }
        double dev_model = (predicted.total() - paper) / paper * 100.0;
        double dev_sim = (sim->total - paper) / paper * 100.0;
        worst_sim_dev = std::max(worst_sim_dev, std::fabs(dev_sim));

        std::string savings_model = "-";
        std::string savings_sim = "-";
        if (strategy != StrategyKind::kNavigationalLate) {
          model::ResponseTime baseline =
              model::Predict(StrategyKind::kNavigationalLate, action,
                             trees[t], nets[n]);
          Result<SimCell> base_sim = SimulateCell(
              trees[t], nets[n], StrategyKind::kNavigationalLate, action);
          if (!base_sim.ok()) {
            std::fprintf(stderr, "baseline simulation failed: %s\n",
                         base_sim.status().ToString().c_str());
            return 1;
          }
          savings_model = Sec(model::SavingPercent(baseline, predicted), 6);
          double sim_saving =
              (base_sim->total - sim->total) / base_sim->total * 100.0;
          savings_sim = Sec(sim_saving, 6);
        }

        std::printf(
            "lat=%3.0fms %4.0fkbit α=%d,ω=%d %-6s | %9.2f %9.2f %9.2f | "
            "%6.2f %6.2f | %7s %7s\n",
            nets[n].latency_s * 1000, nets[n].dtr_kbit, trees[t].depth,
            trees[t].branching,
            std::string(model::ActionKindName(action)).c_str(), paper,
            predicted.total(), sim->total, dev_model, dev_sim,
            savings_model.c_str(), savings_sim.c_str());
      }
    }
  }
  std::printf("\nworst simulation deviation from the paper: %.2f%%\n\n",
              worst_sim_dev);
  return 0;
}

}  // namespace pdm::bench
