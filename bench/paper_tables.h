#ifndef PDM_BENCH_PAPER_TABLES_H_
#define PDM_BENCH_PAPER_TABLES_H_

#include "bench_util.h"

namespace pdm::bench {

/// Reproduces one of the paper's response-time tables: for every network
/// scenario × tree shape × action it prints the value the paper printed,
/// our closed-form prediction, and the simulated measurement (actual SQL
/// through the engine + WAN model), with relative deviations. For
/// Table 3/4 it also prints the savings versus the late-eval baseline,
/// as the paper does. Returns non-zero on failure.
int RunPaperTable(model::StrategyKind strategy);

}  // namespace pdm::bench

#endif  // PDM_BENCH_PAPER_TABLES_H_
