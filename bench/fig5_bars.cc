// Regenerates the paper's Figure 5: response times for α=7, ω=5, σ=0.6
// at T_Lat=150ms / dtr=256 kbit/s under the three regimes.

#include "fig_bars.h"

int main() {
  pdm::model::TreeParams tree{7, 5, 0.6};
  pdm::model::NetworkParams net{0.15, 256, 4096, 512};
  return pdm::bench::RunFigureBars(
      "Figure 5: α=7, ω=5, σ=0.6, T_Lat=150ms, dtr=256kbit/s", tree, net);
}
