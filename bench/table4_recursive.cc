// Regenerates the paper's Table 4 (multi-level expands via recursive
// queries, Approach 2) including the saving-vs-baseline percentages.

#include "paper_tables.h"

int main() {
  return pdm::bench::RunPaperTable(pdm::model::StrategyKind::kRecursive);
}
