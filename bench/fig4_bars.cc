// Regenerates the paper's Figure 4: response times for α=9, ω=3, σ=0.6
// at T_Lat=150ms / dtr=512 kbit/s under the three regimes.

#include "fig_bars.h"

int main() {
  pdm::model::TreeParams tree{9, 3, 0.6};
  pdm::model::NetworkParams net{0.15, 512, 4096, 512};
  return pdm::bench::RunFigureBars(
      "Figure 4: α=9, ω=3, σ=0.6, T_Lat=150ms, dtr=512kbit/s", tree, net);
}
