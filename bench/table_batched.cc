// The batched-regime extension table (no paper counterpart): multi-level
// expand response times under level-wise query batching, regenerated
// from both the closed-form batched model (DESIGN.md 5d) and the
// simulated system, with savings vs the late-evaluation baseline —
// the same grid style as Tables 2/3.

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "rules/query_builder.h"
#include "rules/query_modificator.h"

namespace pdm::bench {
namespace {

using model::ActionKind;
using model::StrategyKind;

/// Per-statement request size s_q: the rendered expand statement for the
/// product's root, with the early variant's rule predicates compiled in
/// when applicable (obid digit count varies by node; the few bytes of
/// spread are far below the model tolerance).
Result<double> MeasureStatementBytes(client::Experiment& experiment,
                                     bool early) {
  std::unique_ptr<sql::SelectStmt> stmt = rules::BuildExpandQuery(
      experiment.product().root_obid, experiment.config().client.hierarchy);
  if (early) {
    rules::QueryModificator modificator(&experiment.rule_table(),
                                        experiment.user());
    PDM_RETURN_NOT_OK(modificator
                          .ApplyToNavigationalQuery(
                              &stmt->query, rules::RuleAction::kExpand)
                          .status());
  }
  return static_cast<double>(stmt->ToSql().size());
}

int Run() {
  PrintBanner(
      "Batched extension: MLE under level-wise batching (model vs sim)");
  std::printf(
      "%-18s %-7s %-11s | %9s %9s %6s | %4s %6s | %7s %7s\n",
      "network", "tree", "variant", "model", "sim", "d-mod%", "rt",
      "stmts", "sav-mod", "sav-sim");

  const StrategyKind variants[] = {StrategyKind::kBatchedLate,
                                   StrategyKind::kBatchedEarly};
  double worst_model_dev = 0;
  for (const model::NetworkParams& net : model::PaperNetworkScenarios()) {
    for (const model::TreeParams& tree : model::PaperTreeScenarios()) {
      client::ExperimentConfig config = MakeExperimentConfig(tree, net);
      Result<std::unique_ptr<client::Experiment>> experiment =
          client::Experiment::Create(config);
      if (!experiment.ok()) {
        std::fprintf(stderr, "experiment failed: %s\n",
                     experiment.status().ToString().c_str());
        return 1;
      }

      Result<client::ActionResult> baseline =
          (*experiment)
              ->RunAction(StrategyKind::kNavigationalLate,
                          ActionKind::kMultiLevelExpand);
      if (!baseline.ok()) {
        std::fprintf(stderr, "baseline failed: %s\n",
                     baseline.status().ToString().c_str());
        return 1;
      }
      model::ResponseTime baseline_model = model::Predict(
          StrategyKind::kNavigationalLate, ActionKind::kMultiLevelExpand,
          tree, net);

      for (StrategyKind variant : variants) {
        bool early = variant == StrategyKind::kBatchedEarly;
        Result<double> s_q = MeasureStatementBytes(**experiment, early);
        if (!s_q.ok()) {
          std::fprintf(stderr, "statement sizing failed: %s\n",
                       s_q.status().ToString().c_str());
          return 1;
        }
        model::ResponseTime predicted = model::Predict(
            variant, ActionKind::kMultiLevelExpand, tree, net, *s_q);

        Result<client::ActionResult> sim =
            (*experiment)->RunAction(variant, ActionKind::kMultiLevelExpand);
        if (!sim.ok()) {
          std::fprintf(stderr, "simulation failed: %s\n",
                       sim.status().ToString().c_str());
          return 1;
        }
        double sim_total = sim->wan.total_seconds();
        double dev_model =
            (predicted.total() - sim_total) / sim_total * 100.0;
        worst_model_dev = std::max(worst_model_dev, std::fabs(dev_model));
        double sav_model = model::SavingPercent(baseline_model, predicted);
        double sav_sim = (baseline->wan.total_seconds() - sim_total) /
                         baseline->wan.total_seconds() * 100.0;

        std::printf(
            "lat=%3.0fms %4.0fkbit α=%d,ω=%d %-11s | %9.2f %9.2f %6.2f | "
            "%4zu %6zu | %7.2f %7.2f\n",
            net.latency_s * 1000, net.dtr_kbit, tree.depth, tree.branching,
            std::string(model::StrategyKindName(variant)).c_str(),
            predicted.total(), sim_total, dev_model, sim->wan.round_trips,
            sim->wan.statements, sav_model, sav_sim);

        if (sim->wan.round_trips !=
            static_cast<size_t>(tree.depth) + 1) {
          std::fprintf(stderr,
                       "FAIL: expected %d round trips (α+1), saw %zu\n",
                       tree.depth + 1, sim->wan.round_trips);
          return 1;
        }
      }
    }
  }
  std::printf("\nworst batched model-vs-simulation deviation: %.2f%%\n\n",
              worst_model_dev);
  return 0;
}

}  // namespace
}  // namespace pdm::bench

int main() { return pdm::bench::Run(); }
