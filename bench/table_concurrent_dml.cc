// Extension table (DESIGN.md 5h): MVCC snapshot reads under concurrent
// DML, two workloads through the shared admission queue.
//
//  * checkout/batch — eight level-batched readers replay the
//    multi-level expand while 0/1/2/4 writers cycle check-out/check-in
//    on a shared subassembly: with MVCC wave lanes reader latency stays
//    flat as writers are added.
//  * burst/recurse — eight recursive readers vs four every-wave UPDATE
//    writers, MVCC vs the pre-MVCC serial mode on the identical
//    workload: a serial DML-carrying wave re-executes the recursive
//    tree query once per reader, the MVCC read lane once per wave.
//
// Reports, per cell: reader wall-clock p50/max, wave/statement/DML
// totals, server-side first-writer-wins conflicts vs client-side
// retries, and version-GC counters. Fails non-zero if
//   * any reader tree deviates from the quiesced reference,
//   * reader p50 at 4 writers is not within the flatness bound of the
//     zero-writer baseline,
//   * the serial mode is not measurably slower than MVCC on the
//     burst/recurse pair,
//   * server conflicts and client retries do not reconcile.
// Writes a Chrome-trace JSON artifact of the traced 4-writer MVCC cell
// (argv[1], default "concurrent_dml_trace.json").

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/admission_queue.h"

namespace pdm::bench {
namespace {

using model::ActionKind;
using model::StrategyKind;

constexpr size_t kReaders = 8;
constexpr size_t kWriterCycles = 3;
/// Update-burst writers: one DML submission per wave, sized to outlast
/// the readers' five level waves with margin.
constexpr size_t kBurstWriterCycles = 8;
constexpr size_t kReps = 3;  // per cell; min-p50 rep kept (noise floor)

/// Reader p50 / flatness bound. Wall clock on a shared machine is
/// noisy and writer DML shares the CPU with the readers, so the bound
/// is deliberately generous.
constexpr double kFlatnessBound = 1.10;
/// The serial mode must be at least this factor slower than MVCC on
/// the burst-writer/recursive-reader pair: with DML pending in every
/// wave, the serial path re-executes the recursive tree query once per
/// reader (8x) while the MVCC read lane executes it once and fans the
/// result out. The measured gap is a large multiple; the floor only
/// needs to reject "no measurable penalty".
constexpr double kSerialSlowdownFloor = 1.5;

uint64_t CounterValue(const char* name) {
  return obs::MetricsRegistry::Global().counter(name).value();
}

struct Cell {
  size_t writers = 0;
  bool mvcc = true;
  client::DmlWriterMode writer_mode =
      client::DmlWriterMode::kCheckOutCycles;
  StrategyKind reader_strategy = StrategyKind::kBatchedEarly;
  double p50_ms = 0;
  double max_ms = 0;
  size_t waves = 0;
  size_t statements = 0;
  size_t dml_statements = 0;
  size_t conflicts = 0;
  size_t conflict_retries = 0;
  bool trees_identical = true;
};

double MedianMs(std::vector<double> seconds) {
  std::sort(seconds.begin(), seconds.end());
  const size_t n = seconds.size();
  const double mid = n % 2 == 1
                         ? seconds[n / 2]
                         : 0.5 * (seconds[n / 2 - 1] + seconds[n / 2]);
  return mid * 1e3;
}

/// Runs one (writers, mvcc) cell `kReps` times against fresh
/// deployments and keeps the repetition with the lowest reader p50.
Result<Cell> RunCell(const client::ExperimentConfig& config,
                     const std::string& reference_tree, size_t writers,
                     bool mvcc, client::DmlWriterMode writer_mode,
                     StrategyKind reader_strategy, bool trace,
                     bool verbose = false) {
  Cell best;
  best.writers = writers;
  best.mvcc = mvcc;
  best.writer_mode = writer_mode;
  best.reader_strategy = reader_strategy;
  best.p50_ms = -1;
  for (size_t rep = 0; rep < kReps; ++rep) {
    PDM_ASSIGN_OR_RETURN(std::unique_ptr<client::Experiment> experiment,
                         client::Experiment::Create(config));
    client::Experiment& e = *experiment;
    e.server().mutable_config().batch_threads = 4;
    e.server().mutable_config().mvcc_waves = mvcc;
    // Aggressive GC cadence so the bench exercises the version pruner.
    e.server().mutable_config().gc_interval_waves = 8;

    client::ConcurrentDmlOptions options;
    options.readers = kReaders;
    options.writers = writers;
    options.writer_mode = writer_mode;
    options.reader_strategy = reader_strategy;
    // Burst writers advance one submission per wave while the readers
    // are active; enough cycles keeps DML pending in every wave of the
    // readers' session.
    options.writer_cycles =
        writer_mode == client::DmlWriterMode::kUpdateBursts
            ? kBurstWriterCycles
            : kWriterCycles;
    // All writers work the same first-level subassembly (BFS
    // generation: the root's first child is root_obid + 1). That is the
    // realistic PDM pattern — engineers check out a subassembly, not
    // the product — and it keeps every writer contending on the same
    // rows while their DML stays small next to the readers' expands.
    options.writer_root_obid = e.product().root_obid + 1;
    const bool trace_this = trace && rep == kReps - 1;
    if (trace_this) obs::Tracer::Global().Enable(true);
    PDM_ASSIGN_OR_RETURN(client::ConcurrentDmlResult run,
                         client::RunConcurrentDmlAction(e, options));
    if (trace_this) obs::Tracer::Global().Enable(false);

    if (verbose && rep == 0) {
      for (const AdmissionQueue::WaveLogEntry& w :
           e.server().admission_queue().wave_log()) {
        std::printf("  wave %llu: stmts=%zu unique=%zu subs=%zu "
                    "clients=%zu ro=%d dml=%zu conflicts=%zu\n",
                    static_cast<unsigned long long>(w.wave_id), w.statements,
                    w.unique_statements, w.submissions, w.clients,
                    w.read_only ? 1 : 0, w.dml_statements, w.conflicts);
      }
    }
    const double p50 = MedianMs(run.reader_wall_seconds);
    if (best.p50_ms >= 0 && p50 >= best.p50_ms) continue;
    best.p50_ms = p50;
    best.max_ms = 1e3 * *std::max_element(run.reader_wall_seconds.begin(),
                                          run.reader_wall_seconds.end());
    best.waves = run.waves;
    best.statements = run.statements;
    best.dml_statements = run.dml_statements;
    best.conflicts = run.conflicts;
    best.conflict_retries = run.conflict_retries;
    best.trees_identical = true;
    for (const client::ActionResult& r : run.reader_results) {
      if (r.tree.ToString(1 << 20) != reference_tree) {
        best.trees_identical = false;
      }
    }
  }
  return best;
}

int Run(const char* trace_path) {
  PrintBanner(
      "Concurrent DML extension: MVCC snapshot reads vs serial waves");

  const model::TreeParams tree{4, 9, 0.6};
  const model::NetworkParams net;
  client::ExperimentConfig config = MakeExperimentConfig(tree, net);

  // Quiesced reference tree for the byte-identical reader check.
  Result<std::unique_ptr<client::Experiment>> reference_experiment =
      client::Experiment::Create(config);
  if (!reference_experiment.ok()) {
    std::fprintf(stderr, "reference experiment failed: %s\n",
                 reference_experiment.status().ToString().c_str());
    return 1;
  }
  // One quiesced reference per reader strategy: the strategies retrieve
  // the same visible tree but serialize it in their own traversal
  // order.
  std::string reference_trees[2];
  const StrategyKind reference_kinds[2] = {StrategyKind::kBatchedEarly,
                                           StrategyKind::kRecursive};
  for (int i = 0; i < 2; ++i) {
    Result<client::ActionResult> reference =
        (*reference_experiment)
            ->RunAction(reference_kinds[i], ActionKind::kMultiLevelExpand);
    if (!reference.ok()) {
      std::fprintf(stderr, "reference run failed: %s\n",
                   reference.status().ToString().c_str());
      return 1;
    }
    reference_trees[i] = reference->tree.ToString(1 << 20);
  }
  const std::string& reference_tree = reference_trees[0];
  const std::string& recursive_reference_tree = reference_trees[1];

  const uint64_t conflicts_before = CounterValue("mvcc.write_conflicts");
  const uint64_t retries_before = CounterValue("mvcc.conflict_retries");

  std::printf("%-7s %-6s %-15s | %9s %9s | %6s %7s %5s | %9s %8s | %s\n",
              "writers", "mode", "load", "p50(ms)", "max(ms)", "waves",
              "stmts", "dml", "conflicts", "retries", "trees");

  // PDM_BENCH_VERBOSE=1 dumps the wave log of the 4-writer cells.
  const bool verbose = std::getenv("PDM_BENCH_VERBOSE") != nullptr;

  // Check-out/check-in writers at increasing counts: the flatness
  // claim on the realistic PDM action mix.
  std::vector<Cell> cells;
  for (size_t writers : {0u, 1u, 2u, 4u}) {
    Result<Cell> cell =
        RunCell(config, reference_tree, writers, /*mvcc=*/true,
                client::DmlWriterMode::kCheckOutCycles,
                StrategyKind::kBatchedEarly,
                /*trace=*/writers == 4, verbose && writers == 4);
    if (!cell.ok()) {
      std::fprintf(stderr, "cell failed (writers=%zu): %s\n", writers,
                   cell.status().ToString().c_str());
      return 1;
    }
    cells.push_back(*cell);
  }
  // Mode comparison, built to be deterministic: burst writers keep DML
  // pending in every wave (check-out writers alternate retrieval and
  // update waves, making DML coverage of a given wave phase luck), and
  // recursive readers put all of a reader's work in one statement whose
  // execution dominates per-statement accounting. The serial path must
  // then execute the recursive query once per reader where MVCC
  // executes it once per wave — the reader/writer serialization cost
  // the wave lanes remove.
  for (bool mvcc : {true, false}) {
    Result<Cell> cell =
        RunCell(config, recursive_reference_tree, 4, mvcc,
                client::DmlWriterMode::kUpdateBursts,
                StrategyKind::kRecursive,
                /*trace=*/false, verbose);
    if (!cell.ok()) {
      std::fprintf(stderr, "burst cell failed (mvcc=%d): %s\n", mvcc ? 1 : 0,
                   cell.status().ToString().c_str());
      return 1;
    }
    cells.push_back(*cell);
  }

  for (const Cell& c : cells) {
    std::printf(
        "%-7zu %-6s %-15s | %9.2f %9.2f | %6zu %7zu %5zu | %9zu %8zu | %s\n",
        c.writers, c.mvcc ? "mvcc" : "serial",
        c.writer_mode == client::DmlWriterMode::kUpdateBursts
            ? "burst/recurse"
            : "checkout/batch",
        c.p50_ms, c.max_ms, c.waves, c.statements, c.dml_statements,
        c.conflicts, c.conflict_retries,
        c.trees_identical ? "identical" : "DEVIATE");
  }

  const uint64_t conflicts_total =
      CounterValue("mvcc.write_conflicts") - conflicts_before;
  const uint64_t retries_total =
      CounterValue("mvcc.conflict_retries") - retries_before;
  std::printf(
      "\nobs reconciliation: mvcc.write_conflicts +%llu, "
      "mvcc.conflict_retries +%llu, mvcc.gc_runs %llu, "
      "mvcc.versions_pruned %llu, mvcc.gc_deferred %llu\n",
      static_cast<unsigned long long>(conflicts_total),
      static_cast<unsigned long long>(retries_total),
      static_cast<unsigned long long>(CounterValue("mvcc.gc_runs")),
      static_cast<unsigned long long>(CounterValue("mvcc.versions_pruned")),
      static_cast<unsigned long long>(CounterValue("mvcc.gc_deferred")));

  int failures = 0;
  for (const Cell& c : cells) {
    if (!c.trees_identical) {
      std::fprintf(stderr,
                   "FAIL: reader tree deviates from the quiesced reference "
                   "(writers=%zu mode=%s)\n",
                   c.writers, c.mvcc ? "mvcc" : "serial");
      ++failures;
    }
    // Per-cell reconciliation holds whenever every writer eventually
    // succeeded (a hard error would have failed the run): one client
    // retry per server-side first-writer-wins loss.
    if (c.conflicts != c.conflict_retries) {
      std::fprintf(stderr,
                   "FAIL: %zu server conflicts vs %zu client retries "
                   "(writers=%zu mode=%s)\n",
                   c.conflicts, c.conflict_retries, c.writers,
                   c.mvcc ? "mvcc" : "serial");
      ++failures;
    }
  }
  const Cell& baseline = cells[0];
  const Cell& loaded = cells[3];        // 4 writers, mvcc, check-out
  const Cell& burst_mvcc = cells[4];    // 4 writers, mvcc, bursts
  const Cell& burst_serial = cells[5];  // 4 writers, serial, bursts
  std::printf(
      "reader flatness: %.3fx the zero-writer baseline (bound %.2fx); "
      "serial slowdown: %.3fx the MVCC p50 on bursts (floor %.2fx)\n",
      loaded.p50_ms / baseline.p50_ms, kFlatnessBound,
      burst_serial.p50_ms / burst_mvcc.p50_ms, kSerialSlowdownFloor);
  if (loaded.p50_ms > kFlatnessBound * baseline.p50_ms) {
    std::fprintf(stderr,
                 "FAIL: reader p50 %.2f ms at 4 writers exceeds %.2fx the "
                 "zero-writer baseline %.2f ms\n",
                 loaded.p50_ms, kFlatnessBound, baseline.p50_ms);
    ++failures;
  }
  if (burst_serial.p50_ms < kSerialSlowdownFloor * burst_mvcc.p50_ms) {
    std::fprintf(stderr,
                 "FAIL: serial p50 %.2f ms is not >= %.2fx the MVCC p50 "
                 "%.2f ms on the update-burst workload\n",
                 burst_serial.p50_ms, kSerialSlowdownFloor,
                 burst_mvcc.p50_ms);
    ++failures;
  }

  std::vector<obs::SpanRecord> spans = obs::Tracer::Global().Snapshot();
  Status written = obs::WriteChromeTraceFile(trace_path, spans);
  if (!written.ok()) {
    std::fprintf(stderr, "FAIL: trace artifact: %s\n",
                 written.ToString().c_str());
    ++failures;
  } else {
    std::printf("trace artifact: %s (%zu spans of the traced 4-writer "
                "MVCC cell)\n",
                trace_path, spans.size());
  }

  std::printf(
      "\n(p50/max = reader wall clock, best of %zu reps. checkout/batch: "
      "level-batched\nreaders vs check-out/check-in writers — the "
      "flatness claim. burst/recurse:\nrecursive readers vs "
      "every-wave UPDATE writers — the serial mode re-executes\nthe "
      "recursive query once per reader, MVCC once per wave.)\n\n",
      kReps);
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace pdm::bench

int main(int argc, char** argv) {
  return pdm::bench::Run(argc > 1 ? argv[1] : "concurrent_dml_trace.json");
}
