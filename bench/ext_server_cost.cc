// Extension: server-side evaluation cost. The paper ignores local query
// evaluation ("transmission costs are the dominating limitation
// factor") and remarks that in higher-bandwidth environments it may
// matter. We measure it: engine rows scanned and wall time per strategy,
// per shape — the recursive statement concentrates work at the server
// but does it once.

#include <chrono>
#include <cstdio>

#include "bench_util.h"

namespace pdm::bench {
namespace {

using Clock = std::chrono::steady_clock;
using model::ActionKind;
using model::StrategyKind;

int Run() {
  PrintBanner("Extension: server-side cost per strategy (paper Section 6)");
  std::printf("%-12s %-18s %12s %14s %14s %12s\n", "shape", "strategy",
              "stmts", "rows-scanned", "cte-rows", "wall-ms");

  const model::TreeParams shapes[] = {{3, 9, 0.6}, {5, 5, 0.6}};
  for (const model::TreeParams& tree : shapes) {
    for (StrategyKind strategy :
         {StrategyKind::kNavigationalLate, StrategyKind::kNavigationalEarly,
          StrategyKind::kRecursive}) {
      model::NetworkParams net;
      client::ExperimentConfig config = MakeExperimentConfig(tree, net);
      Result<std::unique_ptr<client::Experiment>> experiment =
          client::Experiment::Create(config);
      if (!experiment.ok()) return 1;
      client::Experiment& e = **experiment;
      e.server().EnableStatementLog(true);

      // The statement log carries per-statement engine stats; we print
      // the final statement's scan counters (matching the historical
      // last_stats() column) and wall time for total server work.
      Clock::time_point start = Clock::now();
      Result<client::ActionResult> result =
          e.RunAction(strategy, ActionKind::kMultiLevelExpand);
      Clock::time_point end = Clock::now();
      if (!result.ok()) {
        std::fprintf(stderr, "action failed: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
      const std::vector<DbServer::StatementLogEntry>& log =
          e.server().statement_log();
      size_t last_rows = log.empty() ? 0 : log.back().rows_scanned;
      size_t last_cte = log.empty() ? 0 : log.back().cte_rows_scanned;
      std::printf("α=%d,ω=%d %4s %-18s %12zu %14zu %14zu %12.2f\n",
                  tree.depth, tree.branching, "",
                  std::string(model::StrategyKindName(strategy)).c_str(),
                  log.size(), last_rows, last_cte,
                  std::chrono::duration<double>(end - start).count() * 1000);
    }
  }
  std::printf(
      "\n(rows-scanned / cte-rows are those of the *last* statement; for\n"
      "the navigational strategies each of the stmts is a point lookup\n"
      "served from the column index.)\n\n");
  return 0;
}

}  // namespace
}  // namespace pdm::bench

int main() { return pdm::bench::Run(); }
