// The pipelined-regime extension table (no paper counterpart): multi-
// level expand response times under speculative level overlap
// (DESIGN.md 5g), reconciled per cell against the pipelined closed form
// evaluated on the realized per-exchange traffic:
//   * simulated latency / transfer / hidden / total each within 1% of
//     model::PredictPipelinedFromTraffic over the link's exchange
//     records (exact in practice; the tolerance absorbs accumulation
//     order),
//   * the traced t_overlap_hidden span sum reproduces the link's
//     overlap_hidden_seconds,
//   * the pipelined tree is byte-identical to the batched counterpart's
//     and its total strictly below it (the overlap hides time, it never
//     changes traffic).
// Closed-form deviations against model::Predict carry the stochastic
// sigma realization and are printed for reference only.
//
// Also writes one representative pipelined action's spans as Chrome
// trace-event JSON: --json PATH, default table_pipelined.json. Exits
// non-zero on any failed check.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "obs/export.h"
#include "obs/trace.h"
#include "rules/query_builder.h"
#include "rules/query_modificator.h"

namespace pdm::bench {
namespace {

using model::ActionKind;
using model::StrategyKind;

struct CellCheck {
  double measured = 0;
  double expected = 0;

  double deviation() const {
    if (expected == 0 && measured == 0) return 0;
    if (expected == 0) return 1;
    return std::fabs(measured - expected) / expected;
  }
};

/// Per-statement request size s_q for the informational closed form (the
/// same sizing table_batched uses — pipelined statements are identical).
Result<double> MeasureStatementBytes(client::Experiment& experiment,
                                     bool early) {
  std::unique_ptr<sql::SelectStmt> stmt = rules::BuildExpandQuery(
      experiment.product().root_obid, experiment.config().client.hierarchy);
  if (early) {
    rules::QueryModificator modificator(&experiment.rule_table(),
                                        experiment.user());
    PDM_RETURN_NOT_OK(modificator
                          .ApplyToNavigationalQuery(
                              &stmt->query, rules::RuleAction::kExpand)
                          .status());
  }
  return static_cast<double>(stmt->ToSql().size());
}

int Run(const std::string& json_path) {
  constexpr double kTolerance = 0.01;
  PrintBanner(
      "Pipelined extension: MLE under speculative level overlap "
      "(per-exchange closed form vs sim)");
  std::printf(
      "%-18s %-7s %-11s | %9s %9s %8s | %8s %8s | %8s\n",
      "network", "tree", "variant", "sim", "batched", "hidden",
      "max-dev", "sav-sim", "closed-fm");

  const struct {
    StrategyKind pipelined;
    StrategyKind batched;
    bool early;
  } kVariants[] = {
      {StrategyKind::kPipelinedLate, StrategyKind::kBatchedLate, false},
      {StrategyKind::kPipelinedEarly, StrategyKind::kBatchedEarly, true}};

  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.set_capacity(1 << 18);

  size_t failures = 0;
  std::vector<obs::SpanRecord> representative;
  for (size_t ni = 0; ni < model::PaperNetworkScenarios().size(); ++ni) {
    const model::NetworkParams net = model::PaperNetworkScenarios()[ni];
    for (const model::TreeParams& tree : model::PaperTreeScenarios()) {
      client::ExperimentConfig config = MakeExperimentConfig(tree, net);
      Result<std::unique_ptr<client::Experiment>> experiment =
          client::Experiment::Create(config);
      if (!experiment.ok()) {
        std::fprintf(stderr, "experiment failed: %s\n",
                     experiment.status().ToString().c_str());
        return 1;
      }
      client::Experiment& e = **experiment;

      for (const auto& variant : kVariants) {
        Result<client::ActionResult> batched =
            e.RunAction(variant.batched, ActionKind::kMultiLevelExpand);
        if (!batched.ok()) {
          std::fprintf(stderr, "batched baseline failed: %s\n",
                       batched.status().ToString().c_str());
          return 1;
        }

        tracer.Enable(true);
        e.server().ResetObservability();
        Result<client::ActionResult> sim =
            e.RunAction(variant.pipelined, ActionKind::kMultiLevelExpand);
        std::vector<obs::SpanRecord> spans = tracer.Snapshot();
        tracer.Enable(false);
        if (!sim.ok()) {
          std::fprintf(stderr, "pipelined action failed: %s\n",
                       sim.status().ToString().c_str());
          return 1;
        }
        const net::WanStats& wan = sim->wan;

        // The pipelined closed form on the realized per-exchange
        // traffic (isolated from the stochastic sigma realization).
        std::vector<model::ExchangeTraffic> traffic;
        for (const net::ExchangeRecord& x : e.connection().link().exchanges()) {
          model::ExchangeTraffic t;
          t.request_packets = static_cast<double>(x.request_packets);
          t.response_payload_bytes = x.response_payload_bytes;
          t.overlapped = x.overlapped;
          traffic.push_back(t);
        }
        model::ResponseTime predicted =
            model::PredictPipelinedFromTraffic(net, traffic);

        obs::TermBreakdown breakdown = obs::BreakdownByTerm(spans);
        CellCheck checks[] = {
            {wan.latency_seconds, predicted.latency_part},
            {wan.transfer_seconds, predicted.transfer_part},
            {wan.overlap_hidden_seconds, predicted.overlap_hidden},
            {wan.total_seconds(), predicted.total()},
            // Tracer reconciliation: the overlay spans carry exactly the
            // hidden seconds; lat + transfer spans carry the elapsed
            // total (wan:latency is emitted net of the hidden part).
            {breakdown.sim(obs::ModelTerm::kOverlapHidden),
             wan.overlap_hidden_seconds},
            {breakdown.sim(obs::ModelTerm::kLat) +
                 breakdown.sim(obs::ModelTerm::kTransfer),
             wan.total_seconds()},
        };
        double max_dev = 0;
        for (const CellCheck& check : checks) {
          max_dev = std::max(max_dev, check.deviation());
        }
        bool ok = max_dev <= kTolerance;

        // Byte identity and strict improvement vs the batched run.
        if (sim->tree.ToString(1 << 20) != batched->tree.ToString(1 << 20)) {
          std::fprintf(stderr, "FAIL: pipelined tree differs from batched\n");
          ok = false;
        }
        if (wan.overlap_hidden_seconds <= 0 ||
            sim->seconds() >= batched->seconds()) {
          std::fprintf(stderr,
                       "FAIL: pipelined total %.4f not below batched %.4f\n",
                       sim->seconds(), batched->seconds());
          ok = false;
        }
        if (!ok) ++failures;

        // Informational closed form (tree parameters, not realization).
        Result<double> s_q = MeasureStatementBytes(e, variant.early);
        if (!s_q.ok()) {
          std::fprintf(stderr, "statement sizing failed: %s\n",
                       s_q.status().ToString().c_str());
          return 1;
        }
        model::ResponseTime closed =
            model::Predict(variant.pipelined, ActionKind::kMultiLevelExpand,
                           tree, net, *s_q);
        double closed_dev = closed.total() == 0
                                ? 0
                                : (sim->seconds() - closed.total()) /
                                      closed.total() * 100.0;
        double sav_sim = (batched->seconds() - sim->seconds()) /
                         batched->seconds() * 100.0;

        std::printf(
            "lat=%3.0fms %4.0fkbit α=%d,ω=%d %-11s | %9.2f %9.2f %8.3f | "
            "%7.3f%% %7.2f%% | %7.2f%%%s\n",
            net.latency_s * 1000, net.dtr_kbit, tree.depth, tree.branching,
            variant.early ? "pipe-early" : "pipe-late", sim->seconds(),
            batched->seconds(), wan.overlap_hidden_seconds, max_dev * 100.0,
            sav_sim, closed_dev, ok ? "" : "  CHECK FAILED");

        if (ni == 0 && tree.depth == 3 && !variant.early) {
          representative = std::move(spans);
        }
      }
    }
  }

  if (!representative.empty()) {
    obs::TermBreakdown breakdown = obs::BreakdownByTerm(representative);
    std::printf("\nrepresentative action (net 0, a3b9, pipelined-late mle): "
                "%zu spans\n%s",
                representative.size(),
                obs::RenderBreakdownTable(breakdown).c_str());
    Status written = obs::WriteChromeTraceFile(json_path, representative);
    if (!written.ok()) {
      std::fprintf(stderr, "trace export: %s\n", written.ToString().c_str());
      return 1;
    }
    std::printf("chrome trace written to %s (load in chrome://tracing or "
                "ui.perfetto.dev)\n",
                json_path.c_str());
  }

  if (failures > 0) {
    std::fprintf(stderr, "\n%zu cell(s) failed their checks\n", failures);
    return 1;
  }
  std::printf("\nall cells reconciled within %.0f%% and beat their batched "
              "counterparts\n",
              kTolerance * 100.0);
  return 0;
}

}  // namespace
}  // namespace pdm::bench

int main(int argc, char** argv) {
  std::string json_path = "table_pipelined.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--json PATH]\n", argv[0]);
      return 2;
    }
  }
  return pdm::bench::Run(json_path);
}
