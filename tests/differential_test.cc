// Differential tests: independent implementations must agree.
//  * navigational vs recursive traversal on randomized trees
//  * engine evaluation vs a reference C++ oracle on random predicates
//  * optimizer on vs off on a query corpus

#include <gtest/gtest.h>

#include "client/experiment.h"
#include "common/rng.h"
#include "common/string_util.h"

namespace pdm {
namespace {

using model::ActionKind;
using model::StrategyKind;

// --- Strategy equivalence on randomized (Bernoulli-σ) trees -----------------

class StrategyEquivalenceSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StrategyEquivalenceSweep, AllStrategiesRetrieveTheSameTree) {
  Rng rng(GetParam());
  client::ExperimentConfig config;
  config.generator.depth = 2 + static_cast<int>(rng.NextBelow(3));
  config.generator.branching = 2 + static_cast<int>(rng.NextBelow(4));
  config.generator.sigma = 0.3 + rng.NextDouble() * 0.7;
  config.generator.sigma_mode =
      pdmsys::GeneratorConfig::SigmaMode::kBernoulli;
  config.generator.seed = GetParam() * 7919 + 13;

  Result<std::unique_ptr<client::Experiment>> experiment =
      client::Experiment::Create(config);
  ASSERT_TRUE(experiment.ok()) << experiment.status();
  client::Experiment& e = **experiment;

  Result<client::ActionResult> late = e.RunAction(
      StrategyKind::kNavigationalLate, ActionKind::kMultiLevelExpand);
  Result<client::ActionResult> early = e.RunAction(
      StrategyKind::kNavigationalEarly, ActionKind::kMultiLevelExpand);
  Result<client::ActionResult> rec =
      e.RunAction(StrategyKind::kRecursive, ActionKind::kMultiLevelExpand);
  Result<client::ActionResult> batched_late = e.RunAction(
      StrategyKind::kBatchedLate, ActionKind::kMultiLevelExpand);
  Result<client::ActionResult> batched_early = e.RunAction(
      StrategyKind::kBatchedEarly, ActionKind::kMultiLevelExpand);
  ASSERT_TRUE(late.ok()) << late.status();
  ASSERT_TRUE(early.ok()) << early.status();
  ASSERT_TRUE(rec.ok()) << rec.status();
  ASSERT_TRUE(batched_late.ok()) << batched_late.status();
  ASSERT_TRUE(batched_early.ok()) << batched_early.status();

  // The batched strategies are the navigational ones with a different
  // wire schedule: the assembled tree must be byte-identical, and the
  // same statements must arrive in at most α+1 round trips (fewer when a
  // Bernoulli realization empties a level early).
  EXPECT_EQ(batched_late->tree.ToString(1 << 20),
            late->tree.ToString(1 << 20));
  EXPECT_EQ(batched_early->tree.ToString(1 << 20),
            early->tree.ToString(1 << 20));
  EXPECT_EQ(batched_late->transmitted_rows, late->transmitted_rows);
  EXPECT_EQ(batched_early->transmitted_rows, early->transmitted_rows);
  EXPECT_LE(batched_late->wan.round_trips,
            static_cast<size_t>(config.generator.depth) + 1);
  EXPECT_EQ(batched_late->wan.statements, late->wan.round_trips);

  // Identical node sets and identical parent assignment.
  ASSERT_EQ(late->tree.num_nodes(), rec->tree.num_nodes());
  ASSERT_EQ(early->tree.num_nodes(), rec->tree.num_nodes());
  EXPECT_EQ(rec->visible_nodes, e.product().visible_nodes);
  for (const pdmsys::ProductNode& node : rec->tree.nodes()) {
    std::optional<size_t> in_late = late->tree.FindByObid(node.obid);
    ASSERT_TRUE(in_late.has_value()) << node.obid;
    const pdmsys::ProductNode& other = late->tree.node(*in_late);
    if (node.parent.has_value()) {
      ASSERT_TRUE(other.parent.has_value());
      EXPECT_EQ(rec->tree.node(*node.parent).obid,
                late->tree.node(*other.parent).obid);
    } else {
      EXPECT_FALSE(other.parent.has_value());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StrategyEquivalenceSweep,
                         ::testing::Range<uint64_t>(1, 13));

// --- Random predicate evaluation vs a C++ oracle ------------------------------

struct OracleRow {
  int64_t a;
  int64_t b;
  bool a_null;
  bool b_null;
};

/// Tri-state boolean mirroring SQL three-valued logic.
enum class Tri { kFalse, kTrue, kNull };

Tri TriAnd(Tri x, Tri y) {
  if (x == Tri::kFalse || y == Tri::kFalse) return Tri::kFalse;
  if (x == Tri::kTrue && y == Tri::kTrue) return Tri::kTrue;
  return Tri::kNull;
}
Tri TriOr(Tri x, Tri y) {
  if (x == Tri::kTrue || y == Tri::kTrue) return Tri::kTrue;
  if (x == Tri::kFalse && y == Tri::kFalse) return Tri::kFalse;
  return Tri::kNull;
}
Tri TriNot(Tri x) {
  if (x == Tri::kNull) return Tri::kNull;
  return x == Tri::kTrue ? Tri::kFalse : Tri::kTrue;
}

/// A random predicate over columns a, b with its oracle evaluation.
struct RandomPredicate {
  std::string sql;
  std::function<Tri(const OracleRow&)> oracle;
};

RandomPredicate MakeLeaf(Rng* rng) {
  int64_t k = rng->NextInRange(-2, 2);
  switch (rng->NextBelow(6)) {
    case 0:
      return {"a = " + std::to_string(k), [k](const OracleRow& r) {
                if (r.a_null) return Tri::kNull;
                return r.a == k ? Tri::kTrue : Tri::kFalse;
              }};
    case 1:
      return {"b > " + std::to_string(k), [k](const OracleRow& r) {
                if (r.b_null) return Tri::kNull;
                return r.b > k ? Tri::kTrue : Tri::kFalse;
              }};
    case 2:
      return {"a <= b", [](const OracleRow& r) {
                if (r.a_null || r.b_null) return Tri::kNull;
                return r.a <= r.b ? Tri::kTrue : Tri::kFalse;
              }};
    case 3:
      return {"a IS NULL", [](const OracleRow& r) {
                return r.a_null ? Tri::kTrue : Tri::kFalse;
              }};
    case 4:
      return {"a BETWEEN -1 AND 1", [](const OracleRow& r) {
                if (r.a_null) return Tri::kNull;
                return (r.a >= -1 && r.a <= 1) ? Tri::kTrue : Tri::kFalse;
              }};
    default:
      return {"b IN (0, 2, " + std::to_string(k) + ")",
              [k](const OracleRow& r) {
                if (r.b_null) return Tri::kNull;
                return (r.b == 0 || r.b == 2 || r.b == k) ? Tri::kTrue
                                                          : Tri::kFalse;
              }};
  }
}

RandomPredicate MakePredicate(Rng* rng, int depth) {
  if (depth == 0 || rng->NextBool(0.35)) return MakeLeaf(rng);
  switch (rng->NextBelow(3)) {
    case 0: {
      RandomPredicate l = MakePredicate(rng, depth - 1);
      RandomPredicate r = MakePredicate(rng, depth - 1);
      return {"(" + l.sql + ") AND (" + r.sql + ")",
              [lo = l.oracle, ro = r.oracle](const OracleRow& row) {
                return TriAnd(lo(row), ro(row));
              }};
    }
    case 1: {
      RandomPredicate l = MakePredicate(rng, depth - 1);
      RandomPredicate r = MakePredicate(rng, depth - 1);
      return {"(" + l.sql + ") OR (" + r.sql + ")",
              [lo = l.oracle, ro = r.oracle](const OracleRow& row) {
                return TriOr(lo(row), ro(row));
              }};
    }
    default: {
      RandomPredicate inner = MakePredicate(rng, depth - 1);
      return {"NOT (" + inner.sql + ")",
              [io = inner.oracle](const OracleRow& row) {
                return TriNot(io(row));
              }};
    }
  }
}

class PredicateOracleSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PredicateOracleSweep, EngineMatchesOracle) {
  Rng rng(GetParam() * 104729 + 7);
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t (id INTEGER, a INTEGER, b INTEGER)")
                  .ok());
  std::vector<OracleRow> rows;
  for (int i = 0; i < 40; ++i) {
    OracleRow row;
    row.a_null = rng.NextBool(0.2);
    row.b_null = rng.NextBool(0.2);
    row.a = rng.NextInRange(-3, 3);
    row.b = rng.NextInRange(-3, 3);
    rows.push_back(row);
    ASSERT_TRUE(
        db.Execute(StrFormat(
                       "INSERT INTO t VALUES (%d, %s, %s)", i,
                       row.a_null ? "NULL" : std::to_string(row.a).c_str(),
                       row.b_null ? "NULL" : std::to_string(row.b).c_str()))
            .ok());
  }

  for (int trial = 0; trial < 25; ++trial) {
    RandomPredicate pred = MakePredicate(&rng, 3);
    Result<ResultSet> result =
        db.Query("SELECT id FROM t WHERE " + pred.sql + " ORDER BY 1");
    ASSERT_TRUE(result.ok()) << pred.sql << " -> " << result.status();
    std::vector<int64_t> expected;
    for (size_t i = 0; i < rows.size(); ++i) {
      if (pred.oracle(rows[i]) == Tri::kTrue) {
        expected.push_back(static_cast<int64_t>(i));
      }
    }
    ASSERT_EQ(result->num_rows(), expected.size()) << pred.sql;
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(result->At(i, 0).int64_value(), expected[i]) << pred.sql;
    }

    // Row-vs-vectorized differential on the same predicate, without the
    // ORDER BY so the plan keeps the Project->Filter->Scan shape the
    // batch executor handles (both engines scan in slot order, so the
    // unsorted output is deterministic too).
    const std::string bare = "SELECT id FROM t WHERE " + pred.sql;
    Result<ResultSet> vec = db.Query(bare);
    ASSERT_TRUE(vec.ok()) << pred.sql << " -> " << vec.status();
    db.options().exec.vectorized_execution = false;
    Result<ResultSet> row_engine = db.Query(bare);
    db.options().exec.vectorized_execution = true;
    ASSERT_TRUE(row_engine.ok()) << pred.sql << " -> " << row_engine.status();
    EXPECT_EQ(vec->ToString(10000), row_engine->ToString(10000)) << pred.sql;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PredicateOracleSweep,
                         ::testing::Range<uint64_t>(1, 9));

// --- Optimizer / engine on-off corpora ---------------------------------------

/// Queries over the generated PDM product shared by the switch-off
/// differentials below.
constexpr const char* kCorpus[] = {
    "SELECT COUNT(*) FROM link WHERE left = 1 AND eff_from <= 50",
    "SELECT a.obid, COUNT(*) FROM assy AS a JOIN link ON a.obid = "
    "link.left GROUP BY a.obid HAVING COUNT(*) > 1 ORDER BY 1",
    "SELECT obid FROM comp WHERE EXISTS (SELECT * FROM specified_by "
    "WHERE specified_by.left = comp.obid) ORDER BY 1",
    "SELECT material, AVG(weight) FROM comp WHERE acc = '+' GROUP BY "
    "material ORDER BY 1",
    "SELECT obid FROM assy WHERE obid IN (SELECT left FROM link "
    "WHERE strc_opt = 1) ORDER BY 1",
};

TEST(OptimizerDifferential, SameResultsWithAllSwitchesOff) {
  client::ExperimentConfig config;
  config.generator.depth = 3;
  config.generator.branching = 3;
  config.generator.sigma = 0.6;
  Result<std::unique_ptr<client::Experiment>> experiment =
      client::Experiment::Create(config);
  ASSERT_TRUE(experiment.ok());
  Database& db = (*experiment)->server().database();

  std::vector<std::string> baseline;
  for (const char* sql : kCorpus) {
    Result<ResultSet> rs = db.Query(sql);
    ASSERT_TRUE(rs.ok()) << sql << " -> " << rs.status();
    baseline.push_back(rs->ToString(10000));
  }

  db.options().binder.use_hash_join = false;
  db.options().binder.predicate_pushdown = false;
  db.options().exec.cache_uncorrelated_subqueries = false;
  db.options().exec.semi_naive_recursion = false;
  for (size_t i = 0; i < std::size(kCorpus); ++i) {
    Result<ResultSet> rs = db.Query(kCorpus[i]);
    ASSERT_TRUE(rs.ok()) << kCorpus[i];
    EXPECT_EQ(rs->ToString(10000), baseline[i]) << kCorpus[i];
  }
}

TEST(VecEngineDifferential, SameResultsWithVectorizedExecutionOff) {
  client::ExperimentConfig config;
  config.generator.depth = 3;
  config.generator.branching = 3;
  config.generator.sigma = 0.6;
  Result<std::unique_ptr<client::Experiment>> experiment =
      client::Experiment::Create(config);
  ASSERT_TRUE(experiment.ok());
  Database& db = (*experiment)->server().database();

  // The shared corpus plus scan/filter/project shapes the batch
  // executor handles directly (no ORDER BY — both engines emit in slot
  // order — and no bare equality conjunct, which would divert to the
  // row engine's index scan anyway).
  std::vector<std::string> queries(std::begin(kCorpus), std::end(kCorpus));
  const char* kScanCorpus[] = {
      "SELECT left, right FROM link WHERE eff_from <= 50 AND eff_to > 50",
      "SELECT obid, weight FROM comp WHERE weight > 1.0 OR material IS NULL",
      "SELECT obid, name FROM assy WHERE name LIKE '%3%' AND NOT frozen",
      "SELECT obid FROM link WHERE strc_opt IN (0, 1) LIMIT 40",
      "SELECT obid, weight * 2 FROM comp WHERE obid BETWEEN 10 AND 200",
  };
  queries.insert(queries.end(), std::begin(kScanCorpus),
                 std::end(kScanCorpus));
  // Join/aggregate/ORDER BY shapes now covered by the batch->row
  // bridge executors (DESIGN.md 5j): hash join builds over filtered
  // scans, index joins, grouped and DISTINCT aggregation, and row-path
  // sorts fed by bridged scans.
  const char* kBridgeCorpus[] = {
      "SELECT l.obid, a.name FROM link AS l JOIN assy AS a "
      "ON l.left = a.obid WHERE a.weight > 0",
      "SELECT l.obid, c.name FROM link AS l JOIN comp AS c "
      "ON l.right = c.obid",
      "SELECT hier, COUNT(*), MIN(eff_from), MAX(eff_to) FROM link "
      "WHERE obid >= 0 GROUP BY hier",
      "SELECT strc_opt, AVG(eff_to - eff_from) FROM link "
      "WHERE eff_from >= 0 GROUP BY strc_opt",
      "SELECT material, SUM(weight), COUNT(DISTINCT acc) FROM comp "
      "WHERE obid >= 0 GROUP BY material HAVING COUNT(*) > 1",
      "SELECT obid, left, right FROM link WHERE eff_from <= 100 "
      "ORDER BY left, obid",
  };
  queries.insert(queries.end(), std::begin(kBridgeCorpus),
                 std::end(kBridgeCorpus));

  std::vector<std::string> baseline;
  bool any_vectorized = false;
  for (const std::string& sql : queries) {
    Result<ResultSet> rs = db.Query(sql);
    ASSERT_TRUE(rs.ok()) << sql << " -> " << rs.status();
    baseline.push_back(rs->ToString(10000));
    any_vectorized |= db.last_stats().vec_batches > 0;
  }
  // The scan corpus must actually have exercised the batch executor.
  EXPECT_TRUE(any_vectorized);

  db.options().exec.vectorized_execution = false;
  for (size_t i = 0; i < queries.size(); ++i) {
    Result<ResultSet> rs = db.Query(queries[i]);
    ASSERT_TRUE(rs.ok()) << queries[i];
    EXPECT_EQ(db.last_stats().vec_batches, 0u) << queries[i];
    EXPECT_EQ(rs->ToString(10000), baseline[i]) << queries[i];
  }
}

}  // namespace
}  // namespace pdm
