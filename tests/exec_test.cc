// Execution tests: operators and SQL semantics (three-valued logic,
// joins, aggregation, set operations) exercised through the Database
// facade.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "engine/database.h"

namespace pdm {
namespace {

class ExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.ExecuteScript(R"sql(
      CREATE TABLE nums (n INTEGER, d DOUBLE, s VARCHAR);
      INSERT INTO nums VALUES
        (1, 1.5, 'one'), (2, 2.5, 'two'), (3, NULL, 'three'),
        (NULL, 4.5, NULL), (5, 5.5, 'five');
      CREATE TABLE pets (owner VARCHAR, pet VARCHAR);
      INSERT INTO pets VALUES
        ('ann', 'cat'), ('ann', 'dog'), ('bob', 'cat'), ('eve', 'fox');
    )sql")
                    .ok());
  }

  ResultSet Q(const std::string& sql) {
    Result<ResultSet> result = db_.Query(sql);
    EXPECT_TRUE(result.ok()) << sql << " -> " << result.status();
    return std::move(result).ValueOr(ResultSet{});
  }

  Database db_;
};

TEST_F(ExecTest, ProjectionAndArithmetic) {
  ResultSet rs = Q("SELECT n + 1, n * 2, 7 / 2, 7 % 2, -n FROM nums WHERE n = 3");
  EXPECT_EQ(rs.At(0, 0).int64_value(), 4);
  EXPECT_EQ(rs.At(0, 1).int64_value(), 6);
  EXPECT_EQ(rs.At(0, 2).int64_value(), 3);  // integer division
  EXPECT_EQ(rs.At(0, 3).int64_value(), 1);
  EXPECT_EQ(rs.At(0, 4).int64_value(), -3);
}

TEST_F(ExecTest, MixedArithmeticWidensToDouble) {
  ResultSet rs = Q("SELECT n + d FROM nums WHERE n = 1");
  EXPECT_TRUE(rs.At(0, 0).is_double());
  EXPECT_DOUBLE_EQ(rs.At(0, 0).double_value(), 2.5);
}

TEST_F(ExecTest, DivisionByZeroIsAnError) {
  EXPECT_FALSE(db_.Query("SELECT 1 / 0").ok());
  EXPECT_FALSE(db_.Query("SELECT 1 % 0").ok());
  EXPECT_FALSE(db_.Query("SELECT 1.0 / 0").ok());
}

TEST_F(ExecTest, ThreeValuedLogicInWhere) {
  // n > 2 is NULL for the NULL row: it must be filtered out, and so must
  // its negation — the classic 3VL behaviour.
  EXPECT_EQ(Q("SELECT n FROM nums WHERE n > 2").num_rows(), 2u);
  EXPECT_EQ(Q("SELECT n FROM nums WHERE NOT (n > 2)").num_rows(), 2u);
  EXPECT_EQ(Q("SELECT n FROM nums WHERE n IS NULL").num_rows(), 1u);
  EXPECT_EQ(Q("SELECT n FROM nums WHERE n IS NOT NULL").num_rows(), 4u);
}

TEST_F(ExecTest, KleeneAndOr) {
  // NULL OR TRUE = TRUE; NULL AND TRUE = NULL (filtered).
  EXPECT_EQ(Q("SELECT n FROM nums WHERE n > 100 OR s = 'three'").num_rows(),
            1u);
  EXPECT_EQ(
      Q("SELECT n FROM nums WHERE d > 0 AND s IS NULL").num_rows(), 1u);
  // Short-circuit must not change semantics: FALSE AND <error> is FALSE.
  EXPECT_EQ(Q("SELECT n FROM nums WHERE 1 = 2 AND 1 / 0 = 1").num_rows(),
            0u);
}

TEST_F(ExecTest, InListSemantics) {
  EXPECT_EQ(Q("SELECT n FROM nums WHERE n IN (1, 5)").num_rows(), 2u);
  // x NOT IN (list containing NULL) is never TRUE unless matched.
  EXPECT_EQ(Q("SELECT n FROM nums WHERE n NOT IN (1, NULL)").num_rows(), 0u);
  EXPECT_EQ(Q("SELECT n FROM nums WHERE n IN (1, NULL)").num_rows(), 1u);
  // Cross-kind numeric match.
  EXPECT_EQ(Q("SELECT n FROM nums WHERE n IN (1.0)").num_rows(), 1u);
}

TEST_F(ExecTest, BetweenAndLike) {
  EXPECT_EQ(Q("SELECT n FROM nums WHERE n BETWEEN 2 AND 3").num_rows(), 2u);
  EXPECT_EQ(Q("SELECT n FROM nums WHERE n NOT BETWEEN 2 AND 3").num_rows(),
            2u);
  EXPECT_EQ(Q("SELECT s FROM nums WHERE s LIKE 't%'").num_rows(), 2u);
  EXPECT_EQ(Q("SELECT s FROM nums WHERE s LIKE '_ive'").num_rows(), 1u);
}

TEST_F(ExecTest, CaseExpression) {
  // ORDER BY resolves output columns (positions or names), so the sort
  // key must be selected.
  ResultSet rs = Q(
      "SELECT n, CASE WHEN n < 3 THEN 'small' WHEN n < 10 THEN 'big' "
      "ELSE 'other' END FROM nums WHERE n IS NOT NULL ORDER BY n");
  EXPECT_EQ(rs.At(0, 1).string_value(), "small");
  EXPECT_EQ(rs.At(3, 1).string_value(), "big");
}

TEST_F(ExecTest, CaseWithoutElseYieldsNull) {
  ResultSet rs = Q("SELECT CASE WHEN 1 = 2 THEN 'x' END");
  EXPECT_TRUE(rs.At(0, 0).is_null());
}

TEST_F(ExecTest, CrossJoinAndEquiJoin) {
  EXPECT_EQ(Q("SELECT * FROM pets AS a, pets AS b").num_rows(), 16u);
  ResultSet rs = Q(
      "SELECT a.owner, b.owner FROM pets AS a JOIN pets AS b "
      "ON a.pet = b.pet WHERE a.owner < b.owner");
  // cat is shared by ann/bob.
  ASSERT_EQ(rs.num_rows(), 1u);
  EXPECT_EQ(rs.At(0, 0).string_value(), "ann");
  EXPECT_EQ(rs.At(0, 1).string_value(), "bob");
}

TEST_F(ExecTest, JoinWithNullKeysNeverMatches) {
  ASSERT_TRUE(db_.ExecuteScript(R"sql(
    CREATE TABLE l (k INTEGER);
    CREATE TABLE r (k INTEGER);
    INSERT INTO l VALUES (1), (NULL);
    INSERT INTO r VALUES (1), (NULL);
  )sql")
                  .ok());
  EXPECT_EQ(Q("SELECT * FROM l JOIN r ON l.k = r.k").num_rows(), 1u);
}

TEST_F(ExecTest, HashJoinAndNestedLoopAgree) {
  const char* sql =
      "SELECT a.owner FROM pets AS a JOIN pets AS b ON a.pet = b.pet "
      "ORDER BY 1";
  ResultSet with_hash = Q(sql);
  db_.options().binder.use_hash_join = false;
  ResultSet with_nlj = Q(sql);
  ASSERT_EQ(with_hash.num_rows(), with_nlj.num_rows());
  for (size_t i = 0; i < with_hash.num_rows(); ++i) {
    EXPECT_EQ(with_hash.At(i, 0).ToString(), with_nlj.At(i, 0).ToString());
  }
}

TEST_F(ExecTest, ScalarAggregates) {
  ResultSet rs = Q(
      "SELECT COUNT(*), COUNT(n), SUM(n), AVG(n), MIN(n), MAX(n) FROM nums");
  EXPECT_EQ(rs.At(0, 0).int64_value(), 5);   // COUNT(*) counts NULL rows
  EXPECT_EQ(rs.At(0, 1).int64_value(), 4);   // COUNT(n) skips NULL
  EXPECT_EQ(rs.At(0, 2).int64_value(), 11);  // 1+2+3+5
  EXPECT_DOUBLE_EQ(rs.At(0, 3).double_value(), 2.75);
  EXPECT_EQ(rs.At(0, 4).int64_value(), 1);
  EXPECT_EQ(rs.At(0, 5).int64_value(), 5);
}

TEST_F(ExecTest, AggregatesOverEmptyInput) {
  ResultSet rs =
      Q("SELECT COUNT(*), SUM(n), MIN(n) FROM nums WHERE n > 100");
  EXPECT_EQ(rs.num_rows(), 1u);
  EXPECT_EQ(rs.At(0, 0).int64_value(), 0);
  EXPECT_TRUE(rs.At(0, 1).is_null());
  EXPECT_TRUE(rs.At(0, 2).is_null());
}

TEST_F(ExecTest, GroupByWithHaving) {
  ResultSet rs = Q(
      "SELECT owner, COUNT(*) FROM pets GROUP BY owner "
      "HAVING COUNT(*) > 1 ORDER BY 1");
  ASSERT_EQ(rs.num_rows(), 1u);
  EXPECT_EQ(rs.At(0, 0).string_value(), "ann");
  EXPECT_EQ(rs.At(0, 1).int64_value(), 2);
}

TEST_F(ExecTest, GroupByPreservesFirstSeenOrderUnderSort) {
  ResultSet rs =
      Q("SELECT pet, COUNT(*) FROM pets GROUP BY pet ORDER BY 2 DESC, 1");
  ASSERT_EQ(rs.num_rows(), 3u);
  EXPECT_EQ(rs.At(0, 0).string_value(), "cat");
}

TEST_F(ExecTest, CountDistinct) {
  ResultSet rs = Q("SELECT COUNT(DISTINCT pet) FROM pets");
  EXPECT_EQ(rs.At(0, 0).int64_value(), 3);
}

TEST_F(ExecTest, AggregateArithmeticInSelectList) {
  ResultSet rs = Q("SELECT MAX(n) - MIN(n), COUNT(*) * 10 FROM nums");
  EXPECT_EQ(rs.At(0, 0).int64_value(), 4);
  EXPECT_EQ(rs.At(0, 1).int64_value(), 50);
}

TEST_F(ExecTest, NonAggregatedColumnRejected) {
  Result<ResultSet> bad = db_.Query("SELECT owner, COUNT(*) FROM pets");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kBindError);
}

TEST_F(ExecTest, DistinctAndUnionSemantics) {
  EXPECT_EQ(Q("SELECT DISTINCT pet FROM pets").num_rows(), 3u);
  EXPECT_EQ(Q("SELECT pet FROM pets UNION SELECT pet FROM pets").num_rows(),
            3u);
  EXPECT_EQ(
      Q("SELECT pet FROM pets UNION ALL SELECT pet FROM pets").num_rows(),
      8u);
  // NULLs group together in DISTINCT.
  EXPECT_EQ(Q("SELECT DISTINCT s IS NULL FROM nums").num_rows(), 2u);
}

TEST_F(ExecTest, UnionArityMismatchRejected) {
  EXPECT_FALSE(db_.Query("SELECT 1 UNION SELECT 1, 2").ok());
}

TEST_F(ExecTest, OrderByAndLimit) {
  ResultSet rs = Q("SELECT n FROM nums WHERE n IS NOT NULL ORDER BY n DESC "
                   "LIMIT 2");
  ASSERT_EQ(rs.num_rows(), 2u);
  EXPECT_EQ(rs.At(0, 0).int64_value(), 5);
  EXPECT_EQ(rs.At(1, 0).int64_value(), 3);
}

TEST_F(ExecTest, OrderByNullsFirst) {
  ResultSet rs = Q("SELECT n FROM nums ORDER BY n");
  EXPECT_TRUE(rs.At(0, 0).is_null());
  EXPECT_EQ(rs.At(1, 0).int64_value(), 1);
}

TEST_F(ExecTest, CorrelatedExists) {
  ResultSet rs = Q(
      "SELECT DISTINCT owner FROM pets AS p WHERE EXISTS "
      "(SELECT * FROM pets AS q WHERE q.pet = p.pet AND q.owner <> p.owner) "
      "ORDER BY 1");
  ASSERT_EQ(rs.num_rows(), 2u);  // ann and bob share 'cat'
  EXPECT_EQ(rs.At(0, 0).string_value(), "ann");
}

TEST_F(ExecTest, CorrelatedScalarSubquery) {
  ResultSet rs = Q(
      "SELECT owner, (SELECT COUNT(*) FROM pets AS q WHERE q.owner = "
      "p.owner) FROM pets AS p WHERE pet = 'cat' ORDER BY 1");
  EXPECT_EQ(rs.At(0, 1).int64_value(), 2);  // ann
  EXPECT_EQ(rs.At(1, 1).int64_value(), 1);  // bob
}

TEST_F(ExecTest, ScalarSubqueryCardinalityChecks) {
  EXPECT_TRUE(Q("SELECT (SELECT n FROM nums WHERE n = 99)").At(0, 0).is_null());
  EXPECT_FALSE(db_.Query("SELECT (SELECT n FROM nums)").ok());
}

TEST_F(ExecTest, InSubqueryWithNulls) {
  // 4 IN (set without 4 but with NULL) -> NULL -> filtered.
  EXPECT_EQ(
      Q("SELECT d FROM nums WHERE 4 IN (SELECT n FROM nums)").num_rows(),
      0u);
  EXPECT_EQ(
      Q("SELECT d FROM nums WHERE 5 IN (SELECT n FROM nums)").num_rows(),
      5u);
}

TEST_F(ExecTest, ConcatCoercesToString) {
  ResultSet rs = Q("SELECT s || '-' || n FROM nums WHERE n = 1");
  EXPECT_EQ(rs.At(0, 0).string_value(), "one-1");
}

TEST_F(ExecTest, CastSemantics) {
  EXPECT_EQ(Q("SELECT CAST('42' AS INTEGER)").At(0, 0).int64_value(), 42);
  EXPECT_EQ(Q("SELECT CAST(4.9 AS INTEGER)").At(0, 0).int64_value(), 4);
  EXPECT_EQ(Q("SELECT CAST(7 AS VARCHAR)").At(0, 0).string_value(), "7");
  EXPECT_TRUE(Q("SELECT CAST(NULL AS INTEGER)").At(0, 0).is_null());
  EXPECT_TRUE(Q("SELECT CAST(1 AS BOOLEAN)").At(0, 0).bool_value());
  EXPECT_FALSE(db_.Query("SELECT CAST('xyz' AS INTEGER)").ok());
}

TEST_F(ExecTest, SelectWithoutFromAndConstantFilter) {
  EXPECT_EQ(Q("SELECT 1, 'a'").num_rows(), 1u);
  EXPECT_EQ(Q("SELECT 1 WHERE 1 = 2").num_rows(), 0u);
  EXPECT_EQ(Q("SELECT 1 WHERE 1 = 1").num_rows(), 1u);
}

TEST_F(ExecTest, ComparingIncomparableKindsIsAnError) {
  EXPECT_FALSE(db_.Query("SELECT * FROM nums WHERE s > 1").ok());
}

TEST_F(ExecTest, StatsCountScannedAndEmittedRows) {
  // The first point lookup on a never-indexed column stays on the
  // vectorized sweep (demand-based routing); the repeat proves the
  // column is worth an index and moves to the row engine's index scan,
  // which touches only the matching row.
  Q("SELECT * FROM nums WHERE n = 1");
  EXPECT_EQ(db_.last_stats().index_scans, 0u);
  Q("SELECT * FROM nums WHERE n = 1");
  EXPECT_EQ(db_.last_stats().rows_scanned, 1u);
  EXPECT_EQ(db_.last_stats().rows_emitted, 1u);
  EXPECT_EQ(db_.last_stats().index_scans, 1u);
}

TEST_F(ExecTest, DerivedTables) {
  ResultSet rs = Q(
      "SELECT t.total FROM (SELECT owner, COUNT(*) AS total FROM pets "
      "GROUP BY owner) AS t WHERE t.owner = 'ann'");
  ASSERT_EQ(rs.num_rows(), 1u);
  EXPECT_EQ(rs.At(0, 0).int64_value(), 2);
}

// --- Vectorized batch execution (DESIGN.md 5i) ------------------------------
//
// Edge cases around the 1024-row fragment geometry, the selection
// vector, NULLs in filter columns, and the row-path fallbacks, all
// through the Database facade. ExecStats.vec_batches/vec_rows_scanned
// prove which engine actually ran: the row path never touches them.

class VecExecTest : public ::testing::Test {
 protected:
  /// t(id, v, s): id = 0..rows-1, v = 2*id except NULL on every 7th
  /// row, s = one of 'a'/'b'/'c' + id. Inserted in 256-row statements
  /// so large tables don't blow up the parser.
  static void Fill(Database* db, size_t rows) {
    ASSERT_TRUE(
        db->Execute("CREATE TABLE t (id INTEGER, v INTEGER, s VARCHAR)")
            .ok());
    size_t next = 0;
    while (next < rows) {
      std::string sql = "INSERT INTO t VALUES ";
      const size_t batch = std::min<size_t>(256, rows - next);
      for (size_t j = 0; j < batch; ++j) {
        const size_t i = next + j;
        if (j > 0) sql += ", ";
        sql += "(" + std::to_string(i) + ", ";
        sql += i % 7 == 0 ? "NULL" : std::to_string(2 * i);
        sql += ", '";
        sql += static_cast<char>('a' + i % 3);
        sql += std::to_string(i) + "')";
      }
      ASSERT_TRUE(db->Execute(sql).ok());
      next += batch;
    }
  }
};

TEST_F(VecExecTest, EmptyTableYieldsEmptyResult) {
  Database db;
  Fill(&db, 0);
  Result<ResultSet> rs = db.Query("SELECT id FROM t WHERE v >= 0");
  ASSERT_TRUE(rs.ok()) << rs.status();
  EXPECT_EQ(rs->num_rows(), 0u);
  EXPECT_EQ(db.last_stats().vec_batches, 0u);
  EXPECT_EQ(db.last_stats().rows_scanned, 0u);
}

TEST_F(VecExecTest, ExactlyOneFragmentOfRows) {
  Database db;
  Fill(&db, 1024);
  Result<ResultSet> rs = db.Query("SELECT id FROM t WHERE id >= 0");
  ASSERT_TRUE(rs.ok()) << rs.status();
  ASSERT_EQ(rs->num_rows(), 1024u);
  EXPECT_EQ(rs->At(1023, 0).int64_value(), 1023);
  EXPECT_EQ(db.last_stats().vec_batches, 1u);
  EXPECT_EQ(db.last_stats().vec_rows_scanned, 1024u);
}

TEST_F(VecExecTest, OneRowPastTheFragmentBoundary) {
  Database db;
  Fill(&db, 1025);
  Result<ResultSet> rs = db.Query("SELECT id FROM t WHERE id >= 0");
  ASSERT_TRUE(rs.ok()) << rs.status();
  ASSERT_EQ(rs->num_rows(), 1025u);
  // Scan order is preserved across the boundary.
  EXPECT_EQ(rs->At(1023, 0).int64_value(), 1023);
  EXPECT_EQ(rs->At(1024, 0).int64_value(), 1024);
  EXPECT_EQ(db.last_stats().vec_batches, 2u);
  EXPECT_EQ(db.last_stats().vec_rows_scanned, 1025u);
}

TEST_F(VecExecTest, AllRowsFilteredLeavesEmptySelection) {
  Database db;
  Fill(&db, 100);
  Result<ResultSet> rs = db.Query("SELECT id FROM t WHERE id < 0");
  ASSERT_TRUE(rs.ok()) << rs.status();
  EXPECT_EQ(rs->num_rows(), 0u);
  // Every row was scanned vectorized, none survived the selection.
  EXPECT_EQ(db.last_stats().vec_rows_scanned, 100u);
  EXPECT_EQ(db.last_stats().rows_emitted, 0u);
}

TEST_F(VecExecTest, NullsInFilterColumnsFollowThreeValuedLogic) {
  Database db;
  Fill(&db, 70);  // v NULL on ids 0, 7, ..., 63: 10 NULLs, 60 values
  auto count = [&](const std::string& where) {
    Result<ResultSet> rs = db.Query("SELECT id FROM t WHERE " + where);
    EXPECT_TRUE(rs.ok()) << where << " -> " << rs.status();
    return rs.ok() ? rs->num_rows() : size_t{0};
  };
  EXPECT_EQ(count("v >= 0"), 60u);
  EXPECT_EQ(db.last_stats().vec_rows_scanned, 70u);
  EXPECT_EQ(count("NOT (v >= 0)"), 0u);  // NULL stays filtered under NOT
  EXPECT_EQ(count("v IS NULL"), 10u);
  EXPECT_EQ(count("v IS NOT NULL"), 60u);
  EXPECT_EQ(count("v >= 0 OR v IS NULL"), 70u);
  EXPECT_EQ(count("v >= 0 AND s IS NOT NULL"), 60u);
}

TEST_F(VecExecTest, PointLookupRoutingIsDemandBased) {
  Database db;
  Fill(&db, 100);
  // First point lookup on a never-indexed column: no index exists and
  // none has proven worth building, so the vectorized sweep answers it
  // (the old routing sent every `col = literal` to the row path and
  // paid a full row-at-a-time scan for a one-off query).
  Result<ResultSet> rs = db.Query("SELECT v FROM t WHERE id = 5");
  ASSERT_TRUE(rs.ok()) << rs.status();
  ASSERT_EQ(rs->num_rows(), 1u);
  EXPECT_EQ(rs->At(0, 0).int64_value(), 10);
  EXPECT_EQ(db.last_stats().index_scans, 0u);
  EXPECT_GT(db.last_stats().vec_batches, 0u);
  // The repeat is the demand signal: the row engine builds the lazy
  // index and the point lookup touches only the matching row.
  rs = db.Query("SELECT v FROM t WHERE id = 6");
  ASSERT_TRUE(rs.ok()) << rs.status();
  ASSERT_EQ(rs->num_rows(), 1u);
  EXPECT_EQ(rs->At(0, 0).int64_value(), 12);
  EXPECT_EQ(db.last_stats().index_scans, 1u);
  EXPECT_EQ(db.last_stats().rows_scanned, 1u);
  EXPECT_EQ(db.last_stats().vec_batches, 0u);
  // Once fresh, the index keeps winning.
  rs = db.Query("SELECT v FROM t WHERE id = 7");
  ASSERT_TRUE(rs.ok()) << rs.status();
  EXPECT_EQ(db.last_stats().index_scans, 1u);
  EXPECT_EQ(db.last_stats().rows_scanned, 1u);
}

TEST_F(VecExecTest, UnsupportedExpressionFallsBackToTheRowEngine) {
  Database db;
  Fill(&db, 10);
  Result<ResultSet> rs = db.Query(
      "SELECT id FROM t WHERE CASE WHEN v IS NULL THEN 0 ELSE v END >= 0");
  ASSERT_TRUE(rs.ok()) << rs.status();
  EXPECT_EQ(rs->num_rows(), 10u);
  EXPECT_EQ(db.last_stats().vec_batches, 0u);
  EXPECT_EQ(db.last_stats().rows_scanned, 10u);
}

TEST_F(VecExecTest, LimitStopsAtTheFirstSatisfiedFragment) {
  Database db;
  Fill(&db, 2500);
  Result<ResultSet> rs = db.Query("SELECT id FROM t WHERE id >= 10 LIMIT 5");
  ASSERT_TRUE(rs.ok()) << rs.status();
  ASSERT_EQ(rs->num_rows(), 5u);
  EXPECT_EQ(rs->At(0, 0).int64_value(), 10);
  // Fragments 1 and 2 are never opened once the limit is satisfied.
  EXPECT_EQ(db.last_stats().vec_batches, 1u);

  Result<ResultSet> zero = db.Query("SELECT id FROM t WHERE id >= 0 LIMIT 0");
  ASSERT_TRUE(zero.ok()) << zero.status();
  EXPECT_EQ(zero->num_rows(), 0u);
}

TEST_F(VecExecTest, ProjectionExpressionsMaterializeLate) {
  Database db;
  Fill(&db, 50);
  Result<ResultSet> rs = db.Query(
      "SELECT id + 1, v * 2, s || '!' FROM t WHERE id BETWEEN 10 AND 12");
  ASSERT_TRUE(rs.ok()) << rs.status();
  ASSERT_EQ(rs->num_rows(), 3u);
  EXPECT_EQ(rs->At(0, 0).int64_value(), 11);
  EXPECT_EQ(rs->At(0, 1).int64_value(), 40);
  EXPECT_EQ(rs->At(0, 2).string_value(), "b10!");
  EXPECT_EQ(db.last_stats().vec_batches, 1u);
}

TEST_F(VecExecTest, AgreesWithTheRowEngineOnOperatorMix) {
  Database db;
  Fill(&db, 1500);
  const char* kQueries[] = {
      "SELECT * FROM t WHERE v > 100",
      "SELECT id, s FROM t WHERE s LIKE 'b%' AND v IS NOT NULL",
      "SELECT id FROM t WHERE id IN (3, 1030, 9999) OR v < 10",
      "SELECT v FROM t WHERE NOT (id BETWEEN 5 AND 1400)",
      "SELECT id FROM t WHERE v >= 0 LIMIT 37",
      "SELECT id, v + id FROM t WHERE 100 <= v AND v <= 120",
  };
  for (const char* sql : kQueries) {
    Result<ResultSet> vec = db.Query(sql);
    ASSERT_TRUE(vec.ok()) << sql << " -> " << vec.status();
    db.options().exec.vectorized_execution = false;
    Result<ResultSet> row = db.Query(sql);
    db.options().exec.vectorized_execution = true;
    ASSERT_TRUE(row.ok()) << sql << " -> " << row.status();
    EXPECT_EQ(vec->ToString(100000), row->ToString(100000)) << sql;
  }
}

TEST_F(VecExecTest, ErrorsMatchTheRowEngine) {
  Database db;
  Fill(&db, 20);
  const char* kBadQueries[] = {
      "SELECT id FROM t WHERE s > 1",   // incomparable kinds
      "SELECT id FROM t WHERE v + 1",   // non-boolean predicate
      "SELECT id FROM t WHERE NOT v",   // NOT on non-boolean
  };
  for (const char* sql : kBadQueries) {
    Result<ResultSet> vec = db.Query(sql);
    EXPECT_FALSE(vec.ok()) << sql;
    db.options().exec.vectorized_execution = false;
    Result<ResultSet> row = db.Query(sql);
    db.options().exec.vectorized_execution = true;
    EXPECT_FALSE(row.ok()) << sql;
    EXPECT_EQ(vec.status().ToString(), row.status().ToString()) << sql;
  }
}

}  // namespace
}  // namespace pdm
