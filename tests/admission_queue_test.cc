// Tests for the shared admission queue (DESIGN.md 5e): wave formation
// with and without registered clients, fingerprint deduplication with
// result fan-out inside read-only waves, the serial no-dedup rule for
// DML waves, per-client result isolation, determinism of the
// multi-client driver across coalesce windows and thread counts, and a
// TSan canary hammering Submit from eight client threads.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "client/experiment.h"
#include "common/string_util.h"
#include "server/admission_queue.h"
#include "server/db_server.h"

namespace pdm {
namespace {

using model::ActionKind;
using model::StrategyKind;

/// A server with t(id INTEGER, name TEXT) of `rows` rows "n0".."n<rows-1>".
void Seed(DbServer* server, int rows) {
  ASSERT_TRUE(
      server->Execute("CREATE TABLE t (id INTEGER, name TEXT)", nullptr,
                      nullptr)
          .ok());
  for (int i = 0; i < rows; ++i) {
    ASSERT_TRUE(server
                    ->Execute(StrFormat("INSERT INTO t VALUES (%d, 'n%d')",
                                        i, i),
                              nullptr, nullptr)
                    .ok());
  }
}

std::string PointQuery(int id) {
  return StrFormat("SELECT name FROM t WHERE id = %d", id);
}

TEST(AdmissionQueue, UnregisteredSubmissionFormsOwnWave) {
  DbServer server;
  Seed(&server, 4);
  // No registered clients: the submission must not block on a barrier.
  std::vector<std::string> statements = {PointQuery(0), PointQuery(1)};
  std::vector<DbServer::BatchStatementResult> results =
      server.Submit(7, statements);
  ASSERT_EQ(results.size(), 2u);
  ASSERT_TRUE(results[0].status.ok());
  ASSERT_TRUE(results[1].status.ok());
  EXPECT_EQ(results[0].result.At(0, 0).ToString(), "n0");
  EXPECT_EQ(results[1].result.At(0, 0).ToString(), "n1");

  std::vector<AdmissionQueue::WaveLogEntry> waves =
      server.admission_queue().wave_log();
  ASSERT_EQ(waves.size(), 1u);
  EXPECT_EQ(waves[0].statements, 2u);
  EXPECT_EQ(waves[0].unique_statements, 2u);
  EXPECT_EQ(waves[0].submissions, 1u);
  EXPECT_EQ(waves[0].clients, 1u);
  EXPECT_TRUE(waves[0].read_only);
}

TEST(AdmissionQueue, EmptySubmissionIsANoOp) {
  DbServer server;
  Seed(&server, 1);
  std::vector<std::string> statements;
  EXPECT_TRUE(server.Submit(1, statements).empty());
  EXPECT_TRUE(server.admission_queue().wave_log().empty());
}

TEST(AdmissionQueue, DedupsIdenticalSelectsWithinAWave) {
  DbServer server;
  Seed(&server, 4);
  server.EnableStatementLog(true);
  // Five statements, two distinct fingerprints: one engine execution
  // per distinct statement, results fanned out byte-identically.
  std::vector<std::string> statements = {PointQuery(2), PointQuery(3),
                                         PointQuery(2), PointQuery(2),
                                         PointQuery(3)};
  std::vector<DbServer::BatchStatementResult> results =
      server.Submit(1, statements);
  ASSERT_EQ(results.size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(results[i].status.ok()) << i;
  }
  EXPECT_EQ(results[0].result.ToString(1 << 20),
            results[2].result.ToString(1 << 20));
  EXPECT_EQ(results[0].result.ToString(1 << 20),
            results[3].result.ToString(1 << 20));
  EXPECT_EQ(results[1].result.ToString(1 << 20),
            results[4].result.ToString(1 << 20));
  EXPECT_EQ(results[0].response_bytes, results[2].response_bytes);

  std::vector<AdmissionQueue::WaveLogEntry> waves =
      server.admission_queue().wave_log();
  ASSERT_EQ(waves.size(), 1u);
  EXPECT_EQ(waves[0].statements, 5u);
  EXPECT_EQ(waves[0].unique_statements, 2u);
  EXPECT_TRUE(waves[0].read_only);

  // The statement log marks exactly the fan-out slots as coalesced.
  size_t coalesced = 0;
  for (const DbServer::StatementLogEntry& entry : server.statement_log()) {
    EXPECT_EQ(entry.wave_id, waves[0].wave_id);
    if (entry.coalesced) ++coalesced;
  }
  EXPECT_EQ(coalesced, 3u);
}

TEST(AdmissionQueue, LiteralsDistinguishDedupGroups) {
  DbServer server;
  Seed(&server, 4);
  // Same normalized shape, different literals: these must NOT coalesce
  // (the group key carries the type-tagged parameter values).
  std::vector<std::string> statements = {PointQuery(0), PointQuery(1)};
  std::vector<DbServer::BatchStatementResult> results =
      server.Submit(1, statements);
  ASSERT_TRUE(results[0].status.ok());
  ASSERT_TRUE(results[1].status.ok());
  EXPECT_NE(results[0].result.At(0, 0).ToString(),
            results[1].result.At(0, 0).ToString());
  EXPECT_EQ(server.admission_queue().wave_log()[0].unique_statements, 2u);
}

TEST(AdmissionQueue, DmlWaveRunsSeriallyWithoutDedup) {
  DbServer server;
  Seed(&server, 1);
  server.mutable_config().batch_threads = 8;
  // Two identical INSERTs are two inserts: no dedup outside read-only
  // waves, and execution stays in admission order.
  std::vector<std::string> statements = {
      "INSERT INTO t VALUES (50, 'dup')", "INSERT INTO t VALUES (50, 'dup')",
      "SELECT COUNT(*) FROM t WHERE id = 50"};
  std::vector<DbServer::BatchStatementResult> results =
      server.Submit(1, statements);
  ASSERT_EQ(results.size(), 3u);
  ASSERT_TRUE(results[2].status.ok());
  EXPECT_EQ(results[2].result.At(0, 0).int64_value(), 2);

  std::vector<AdmissionQueue::WaveLogEntry> waves =
      server.admission_queue().wave_log();
  ASSERT_EQ(waves.size(), 1u);
  EXPECT_FALSE(waves[0].read_only);
  EXPECT_EQ(waves[0].unique_statements, 3u);
}

TEST(AdmissionQueue, BarrierCoalescesAcrossRegisteredClients) {
  DbServer server;
  Seed(&server, 4);
  AdmissionQueue& queue = server.admission_queue();
  queue.RegisterClient();
  queue.RegisterClient();

  // Two clients submit the identical statement; the barrier must merge
  // them into one wave with one engine execution.
  std::vector<std::string> statements = {PointQuery(1)};
  std::vector<DbServer::BatchStatementResult> a, b;
  std::thread ta([&] { a = server.Submit(0, statements); });
  std::thread tb([&] { b = server.Submit(1, statements); });
  ta.join();
  tb.join();
  queue.UnregisterClient();
  queue.UnregisterClient();

  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  ASSERT_TRUE(a[0].status.ok());
  ASSERT_TRUE(b[0].status.ok());
  EXPECT_EQ(a[0].result.ToString(1 << 20), b[0].result.ToString(1 << 20));

  std::vector<AdmissionQueue::WaveLogEntry> waves = queue.wave_log();
  ASSERT_EQ(waves.size(), 1u);
  EXPECT_EQ(waves[0].statements, 2u);
  EXPECT_EQ(waves[0].unique_statements, 1u);
  EXPECT_EQ(waves[0].submissions, 2u);
  EXPECT_EQ(waves[0].clients, 2u);
}

TEST(AdmissionQueue, PerClientResultIsolation) {
  DbServer server;
  Seed(&server, 4);
  AdmissionQueue& queue = server.admission_queue();
  queue.RegisterClient();
  queue.RegisterClient();

  // Client 0 submits a failing statement, client 1 a valid one, in the
  // same wave: the error must stay in client 0's slot only.
  std::vector<std::string> bad = {"SELECT nosuchcol FROM t"};
  std::vector<std::string> good = {PointQuery(3)};
  std::vector<DbServer::BatchStatementResult> a, b;
  std::thread ta([&] { a = server.Submit(0, bad); });
  std::thread tb([&] { b = server.Submit(1, good); });
  ta.join();
  tb.join();
  queue.UnregisterClient();
  queue.UnregisterClient();

  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_FALSE(a[0].status.ok());
  EXPECT_EQ(a[0].result.num_rows(), 0u);
  ASSERT_TRUE(b[0].status.ok());
  EXPECT_EQ(b[0].result.At(0, 0).ToString(), "n3");
}

TEST(AdmissionQueue, OversizedSubmissionStillExecutes) {
  DbServer server;
  Seed(&server, 8);
  server.mutable_config().coalesce_window = 2;
  // One submission larger than the window: it is never split and forms
  // a wave on its own.
  std::vector<std::string> statements = {PointQuery(0), PointQuery(1),
                                         PointQuery(2), PointQuery(3)};
  std::vector<DbServer::BatchStatementResult> results =
      server.Submit(1, statements);
  ASSERT_EQ(results.size(), 4u);
  for (size_t i = 0; i < 4; ++i) ASSERT_TRUE(results[i].status.ok()) << i;
  std::vector<AdmissionQueue::WaveLogEntry> waves =
      server.admission_queue().wave_log();
  ASSERT_EQ(waves.size(), 1u);
  EXPECT_EQ(waves[0].statements, 4u);
}

/// The multi-client driver must produce byte-identical per-client trees
/// for every (coalesce window, batch threads) combination — coalescing
/// shares server CPU, never results.
TEST(AdmissionQueue, MultiClientDriverDeterministicAcrossWindowsAndThreads) {
  client::ExperimentConfig config;
  config.generator.depth = 3;
  config.generator.branching = 4;
  config.generator.sigma = 0.6;

  // Solo uncoalesced reference.
  Result<std::unique_ptr<client::Experiment>> reference_experiment =
      client::Experiment::Create(config);
  ASSERT_TRUE(reference_experiment.ok()) << reference_experiment.status();
  Result<client::ActionResult> reference =
      (*reference_experiment)
          ->RunAction(StrategyKind::kBatchedEarly,
                      ActionKind::kMultiLevelExpand);
  ASSERT_TRUE(reference.ok()) << reference.status();
  const std::string reference_tree = reference->tree.ToString(1 << 20);

  for (size_t window : {0u, 3u, 16u}) {
    for (size_t threads : {1u, 4u}) {
      Result<std::unique_ptr<client::Experiment>> experiment =
          client::Experiment::Create(config);
      ASSERT_TRUE(experiment.ok()) << experiment.status();
      client::Experiment& e = **experiment;
      e.server().mutable_config().coalesce_window = window;
      e.server().mutable_config().batch_threads = threads;

      client::MultiClientOptions options;
      options.clients = 3;
      options.strategy = StrategyKind::kBatchedEarly;
      options.action = ActionKind::kMultiLevelExpand;
      Result<client::MultiClientResult> run =
          client::RunMultiClientAction(e, options);
      ASSERT_TRUE(run.ok()) << run.status() << " window=" << window
                            << " threads=" << threads;

      ASSERT_EQ(run->per_client.size(), 3u);
      for (const client::ActionResult& r : run->per_client) {
        EXPECT_EQ(r.tree.ToString(1 << 20), reference_tree)
            << "window=" << window << " threads=" << threads;
        // Wire invariant: per-client round trips unchanged by
        // coalescing.
        EXPECT_EQ(r.wan.round_trips, reference->wan.round_trips);
        EXPECT_EQ(r.wan.statements, reference->wan.statements);
        EXPECT_DOUBLE_EQ(r.wan.response_payload_bytes,
                         reference->wan.response_payload_bytes);
      }
      EXPECT_EQ(run->statements, 3 * reference->wan.statements);
      // An unbounded window keeps the identical sessions in lockstep:
      // every wave holds one level-batch per client, so the engine runs
      // exactly one client's worth of statements.
      if (window == 0) {
        EXPECT_EQ(run->unique_statements, reference->wan.statements);
      }
      EXPECT_GE(run->unique_statements, reference->wan.statements);
      EXPECT_LE(run->unique_statements, run->statements);
    }
  }
}

/// TSan canary: eight registered client threads hammer Submit with a
/// mix of shared and private statements through many waves. Run under
/// -DPDM_THREAD_SANITIZE=ON this exercises every queue/wave code path
/// for data races; the assertions double as a correctness check.
TEST(AdmissionQueue, TsanCanaryEightClientHammer) {
  DbServer server;
  Seed(&server, 32);
  server.mutable_config().batch_threads = 4;
  constexpr size_t kClients = 8;
  constexpr size_t kRounds = 25;
  AdmissionQueue& queue = server.admission_queue();
  for (size_t c = 0; c < kClients; ++c) queue.RegisterClient();

  std::atomic<size_t> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (size_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      for (size_t round = 0; round < kRounds; ++round) {
        // One statement every client shares (dedups within the wave)
        // plus one private to this client (must not).
        std::vector<std::string> statements = {
            PointQuery(static_cast<int>(round % 8)),
            PointQuery(static_cast<int>(8 + (c + round) % 24))};
        std::vector<DbServer::BatchStatementResult> results =
            server.Submit(c, statements);
        if (results.size() != 2 || !results[0].status.ok() ||
            !results[1].status.ok() ||
            results[0].result.At(0, 0).ToString() !=
                StrFormat("n%zu", round % 8) ||
            results[1].result.At(0, 0).ToString() !=
                StrFormat("n%zu", 8 + (c + round) % 24)) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
      queue.UnregisterClient();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(queue.active_clients(), 0u);

  // Every statement of every round came back through some wave.
  size_t statements = 0;
  for (const AdmissionQueue::WaveLogEntry& wave : queue.wave_log()) {
    statements += wave.statements;
  }
  EXPECT_EQ(statements, kClients * kRounds * 2);
}

}  // namespace
}  // namespace pdm
