// Tests for the generated PDM queries: structure, executability, and
// result shapes against generated data.

#include <gtest/gtest.h>

#include "engine/database.h"
#include "pdm/generator.h"
#include "rules/query_builder.h"
#include "sql/parser.h"

namespace pdm::rules {
namespace {

class QueryBuilderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    pdmsys::GeneratorConfig config;
    config.depth = 2;
    config.branching = 3;
    config.sigma = 1.0;
    Result<pdmsys::GeneratedProduct> product =
        pdmsys::GenerateProduct(&db_, config);
    ASSERT_TRUE(product.ok()) << product.status();
    product_ = *product;
  }

  Database db_;
  pdmsys::GeneratedProduct product_;
};

TEST_F(QueryBuilderTest, RecursiveTreeQueryShape) {
  std::unique_ptr<sql::SelectStmt> stmt =
      BuildRecursiveTreeQuery(product_.root_obid);
  EXPECT_TRUE(stmt->recursive);
  ASSERT_EQ(stmt->ctes.size(), 1u);
  EXPECT_EQ(stmt->ctes[0].name, kRecursiveTableName);
  // Seed + one member per object type.
  EXPECT_EQ(stmt->ctes[0].query->terms.size(), 3u);
  // Object rows + link rows, ordered by type/obid.
  EXPECT_EQ(stmt->query.terms.size(), 2u);
  ASSERT_EQ(stmt->query.order_by.size(), 2u);
  EXPECT_EQ(stmt->query.order_by[0].position, 1);
}

TEST_F(QueryBuilderTest, RecursiveTreeQueryRetrievesWholeTree) {
  ResultSet rs;
  ASSERT_TRUE(
      db_.ExecuteStatement(*BuildRecursiveTreeQuery(product_.root_obid), &rs)
          .ok());
  // 13 objects (1+3+9) + 12 links.
  EXPECT_EQ(rs.num_rows(), 25u);
  // The homogenized schema has both object and link attributes.
  EXPECT_TRUE(rs.schema.FindColumn("material").has_value());
  EXPECT_TRUE(rs.schema.FindColumn("dec").has_value());
  EXPECT_TRUE(rs.schema.FindColumn("LEFT").has_value());
  EXPECT_TRUE(rs.schema.FindColumn("STRC_OPT").has_value());

  // Object rows carry NULL structure columns; link rows carry values.
  size_t left = *rs.schema.FindColumn("LEFT");
  size_t type = *rs.schema.FindColumn("type");
  for (const Row& row : rs.rows) {
    bool is_link = row[type].string_value() == "link";
    EXPECT_EQ(is_link, !row[left].is_null());
  }
}

TEST_F(QueryBuilderTest, ExpandQueryReturnsChildrenWithLinkInfo) {
  ResultSet rs;
  ASSERT_TRUE(db_.ExecuteStatement(*BuildExpandQuery(product_.root_obid), &rs)
                  .ok());
  EXPECT_EQ(rs.num_rows(), 3u);  // ω children of the root
  size_t left = *rs.schema.FindColumn("LEFT");
  for (const Row& row : rs.rows) {
    EXPECT_EQ(row[left].int64_value(), product_.root_obid);
  }
}

TEST_F(QueryBuilderTest, ExpandQueryOfLeafIsEmpty) {
  // Components never have children.
  Result<ResultSet> comp = db_.Query("SELECT obid FROM comp LIMIT 1");
  ASSERT_TRUE(comp.ok());
  int64_t leaf = comp->At(0, 0).int64_value();
  ResultSet rs;
  ASSERT_TRUE(db_.ExecuteStatement(*BuildExpandQuery(leaf), &rs).ok());
  EXPECT_EQ(rs.num_rows(), 0u);
}

TEST_F(QueryBuilderTest, FlatQueryReturnsAllObjectsWithoutStructure) {
  ResultSet rs;
  ASSERT_TRUE(db_.ExecuteStatement(*BuildFlatQuery(), &rs).ok());
  EXPECT_EQ(rs.num_rows(), 13u);
  EXPECT_FALSE(rs.schema.FindColumn("LEFT").has_value());
}

TEST_F(QueryBuilderTest, CheckOutUpdateFlipsFlags) {
  ResultSet rs;
  std::unique_ptr<sql::Statement> update = BuildCheckOutUpdate(
      "assy", {product_.root_obid}, /*checked_out=*/true);
  ASSERT_TRUE(db_.ExecuteStatement(*update, &rs).ok());
  EXPECT_EQ(rs.affected_rows, 1u);
  Result<ResultSet> flag = db_.Query(
      "SELECT checkedout FROM assy WHERE obid = " +
      std::to_string(product_.root_obid));
  ASSERT_TRUE(flag.ok());
  EXPECT_TRUE(flag->At(0, 0).bool_value());

  update = BuildCheckOutUpdate("assy", {product_.root_obid}, false);
  ASSERT_TRUE(db_.ExecuteStatement(*update, &rs).ok());
  flag = db_.Query("SELECT checkedout FROM assy WHERE obid = " +
                   std::to_string(product_.root_obid));
  EXPECT_FALSE(flag->At(0, 0).bool_value());
}

TEST_F(QueryBuilderTest, GeneratedSqlRoundTripsThroughParser) {
  for (const std::string& sql :
       {BuildRecursiveTreeQuery(product_.root_obid)->ToSql(),
        BuildExpandQuery(product_.root_obid)->ToSql(),
        BuildFlatQuery()->ToSql()}) {
    Result<sql::StatementPtr> parsed = sql::ParseSql(sql);
    ASSERT_TRUE(parsed.ok()) << parsed.status() << "\n" << sql;
    EXPECT_EQ((*parsed)->ToSql(), sql);
  }
}

TEST_F(QueryBuilderTest, SubtreeQueryFromInnerNode) {
  // Expanding from a level-1 assembly retrieves only its subtree.
  Result<ResultSet> inner = db_.Query(
      "SELECT right FROM link WHERE left = " +
      std::to_string(product_.root_obid) + " LIMIT 1");
  ASSERT_TRUE(inner.ok());
  int64_t subtree_root = inner->At(0, 0).int64_value();
  ResultSet rs;
  ASSERT_TRUE(
      db_.ExecuteStatement(*BuildRecursiveTreeQuery(subtree_root), &rs).ok());
  // 1 assy + 3 comps + 3 links.
  EXPECT_EQ(rs.num_rows(), 7u);
}

}  // namespace
}  // namespace pdm::rules
