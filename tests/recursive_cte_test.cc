// Tests for recursive common table expressions: graph reachability,
// semi-naive vs naive equivalence, bag semantics, iteration limits.

#include <gtest/gtest.h>

#include "engine/database.h"

namespace pdm {
namespace {

class RecursiveCteTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.ExecuteScript(R"sql(
      CREATE TABLE edge (src INTEGER, dst INTEGER);
      INSERT INTO edge VALUES
        (1, 2), (2, 3), (3, 4), (4, 5),   -- a chain
        (1, 10), (10, 11),                -- a branch
        (20, 21), (21, 20);               -- a 2-cycle, disconnected
    )sql")
                    .ok());
  }

  ResultSet Q(const std::string& sql) {
    Result<ResultSet> result = db_.Query(sql);
    EXPECT_TRUE(result.ok()) << sql << " -> " << result.status();
    return std::move(result).ValueOr(ResultSet{});
  }

  Database db_;
};

constexpr const char* kReachabilityFrom1 = R"sql(
  WITH RECURSIVE reach (node) AS (
    SELECT 1
    UNION
    SELECT edge.dst FROM reach JOIN edge ON reach.node = edge.src)
  SELECT node FROM reach ORDER BY 1
)sql";

TEST_F(RecursiveCteTest, Reachability) {
  ResultSet rs = Q(kReachabilityFrom1);
  ASSERT_EQ(rs.num_rows(), 7u);  // 1,2,3,4,5,10,11
  EXPECT_EQ(rs.At(0, 0).int64_value(), 1);
  EXPECT_EQ(rs.At(6, 0).int64_value(), 11);
}

TEST_F(RecursiveCteTest, CycleTerminatesUnderUnionDistinct) {
  ResultSet rs = Q(R"sql(
    WITH RECURSIVE reach (node) AS (
      SELECT 20
      UNION
      SELECT edge.dst FROM reach JOIN edge ON reach.node = edge.src)
    SELECT node FROM reach ORDER BY 1
  )sql");
  ASSERT_EQ(rs.num_rows(), 2u);  // 20 and 21 despite the cycle
}

TEST_F(RecursiveCteTest, CycleUnderUnionAllHitsIterationLimit) {
  db_.options().exec.max_recursion_iterations = 50;
  Result<ResultSet> result = db_.Query(R"sql(
    WITH RECURSIVE reach (node) AS (
      SELECT 20
      UNION ALL
      SELECT edge.dst FROM reach JOIN edge ON reach.node = edge.src)
    SELECT node FROM reach
  )sql");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kExecutionError);
  EXPECT_NE(result.status().message().find("iterations"), std::string::npos);
}

TEST_F(RecursiveCteTest, UnionAllKeepsDuplicatePaths) {
  // Two distinct paths 1->2 (direct and via 30) produce 2 under ALL.
  ASSERT_TRUE(db_.Execute("INSERT INTO edge VALUES (1, 30), (30, 2)", nullptr)
                  .ok());
  ResultSet rs = Q(R"sql(
    WITH RECURSIVE reach (node) AS (
      SELECT 1
      UNION ALL
      SELECT edge.dst FROM reach JOIN edge ON reach.node = edge.src)
    SELECT COUNT(*) FROM reach WHERE node = 2
  )sql");
  EXPECT_EQ(rs.At(0, 0).int64_value(), 2);
}

TEST_F(RecursiveCteTest, SemiNaiveAndNaiveAgree) {
  ResultSet semi = Q(kReachabilityFrom1);
  size_t semi_iterations = db_.last_stats().recursion_iterations;

  db_.options().exec.semi_naive_recursion = false;
  ResultSet naive = Q(kReachabilityFrom1);
  size_t naive_rows = db_.last_stats().cte_rows_scanned;

  ASSERT_EQ(semi.num_rows(), naive.num_rows());
  for (size_t i = 0; i < semi.num_rows(); ++i) {
    EXPECT_EQ(semi.At(i, 0).int64_value(), naive.At(i, 0).int64_value());
  }
  EXPECT_GT(semi_iterations, 0u);
  EXPECT_GT(naive_rows, 0u);
}

TEST_F(RecursiveCteTest, DepthTrackingWithExpressions) {
  ResultSet rs = Q(R"sql(
    WITH RECURSIVE reach (node, depth) AS (
      SELECT 1, 0
      UNION
      SELECT edge.dst, reach.depth + 1
      FROM reach JOIN edge ON reach.node = edge.src)
    SELECT node, depth FROM reach ORDER BY 2, 1
  )sql");
  EXPECT_EQ(rs.At(0, 1).int64_value(), 0);
  // node 5 is at depth 4.
  EXPECT_EQ(rs.At(rs.num_rows() - 1, 0).int64_value(), 5);
  EXPECT_EQ(rs.At(rs.num_rows() - 1, 1).int64_value(), 4);
}

TEST_F(RecursiveCteTest, MultipleRecursiveTerms) {
  // Walk edges in both directions from node 3.
  ResultSet rs = Q(R"sql(
    WITH RECURSIVE reach (node) AS (
      SELECT 3
      UNION
      SELECT edge.dst FROM reach JOIN edge ON reach.node = edge.src
      UNION
      SELECT edge.src FROM reach JOIN edge ON reach.node = edge.dst)
    SELECT COUNT(*) FROM reach
  )sql");
  EXPECT_EQ(rs.At(0, 0).int64_value(), 7);  // whole weak component of 3
}

TEST_F(RecursiveCteTest, NonRecursiveCtesMaterializeOnceAndChain) {
  ResultSet rs = Q(R"sql(
    WITH big AS (SELECT src, dst FROM edge WHERE src < 10),
         bigger AS (SELECT dst FROM big WHERE dst > 2)
    SELECT COUNT(*) FROM bigger
  )sql");
  EXPECT_EQ(rs.At(0, 0).int64_value(), 4);  // 3,4,5,10
}

TEST_F(RecursiveCteTest, CteVisibleToSubqueries) {
  ResultSet rs = Q(R"sql(
    WITH RECURSIVE reach (node) AS (
      SELECT 1
      UNION
      SELECT edge.dst FROM reach JOIN edge ON reach.node = edge.src)
    SELECT COUNT(*) FROM edge
    WHERE src IN (SELECT node FROM reach)
      AND dst IN (SELECT node FROM reach)
  )sql");
  EXPECT_EQ(rs.At(0, 0).int64_value(), 6);
}

TEST_F(RecursiveCteTest, UncorrelatedSubqueryOverCteIsCached) {
  Q(R"sql(
    WITH RECURSIVE reach (node) AS (
      SELECT 1
      UNION
      SELECT edge.dst FROM reach JOIN edge ON reach.node = edge.src)
    SELECT node FROM reach
    WHERE NOT EXISTS (SELECT * FROM reach WHERE node > 1000)
  )sql");
  EXPECT_GT(db_.last_stats().subquery_cache_hits, 0u);
  EXPECT_LE(db_.last_stats().subquery_evaluations, 2u);
}

TEST_F(RecursiveCteTest, EmptySeedYieldsEmptyResult) {
  ResultSet rs = Q(R"sql(
    WITH RECURSIVE reach (node) AS (
      SELECT src FROM edge WHERE src = 999
      UNION
      SELECT edge.dst FROM reach JOIN edge ON reach.node = edge.src)
    SELECT * FROM reach
  )sql");
  EXPECT_EQ(rs.num_rows(), 0u);
}

TEST_F(RecursiveCteTest, LongChainScalesLinearlyInIterations) {
  ASSERT_TRUE(db_.Execute("DELETE FROM edge", nullptr).ok());
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(db_.Execute("INSERT INTO edge VALUES (" +
                                std::to_string(i) + ", " +
                                std::to_string(i + 1) + ")",
                            nullptr)
                    .ok());
  }
  ResultSet rs = Q(R"sql(
    WITH RECURSIVE reach (node) AS (
      SELECT 0
      UNION
      SELECT edge.dst FROM reach JOIN edge ON reach.node = edge.src)
    SELECT COUNT(*) FROM reach
  )sql");
  EXPECT_EQ(rs.At(0, 0).int64_value(), 201);
  EXPECT_EQ(db_.last_stats().recursion_iterations, 201u);
}

}  // namespace
}  // namespace pdm
