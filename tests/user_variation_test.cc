// Tests that different user sessions (effectivity windows, structure
// options) see different slices of the same product — the paper's
// Section 3 rule semantics exercised end to end.

#include <gtest/gtest.h>

#include "client/experiment.h"
#include "pdm/pdm_schema.h"

namespace pdm::client {
namespace {

class UserVariationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ExperimentConfig config;
    config.generator.depth = 3;
    config.generator.branching = 4;
    config.generator.sigma = 0.5;
    Result<std::unique_ptr<Experiment>> experiment =
        Experiment::Create(config);
    ASSERT_TRUE(experiment.ok()) << experiment.status();
    experiment_ = std::move(*experiment);
  }

  /// Runs a recursive MLE as the given user, against the shared rule
  /// table (which references $user variables).
  Result<ActionResult> ExpandAs(const pdmsys::UserContext& user) {
    RecursiveStrategy strategy(&experiment_->connection(),
                               &experiment_->rule_table(), user,
                               ClientConfig{});
    return strategy.MultiLevelExpand(experiment_->product().root_obid);
  }

  std::unique_ptr<Experiment> experiment_;
};

TEST_F(UserVariationTest, ReferenceUserSeesTheCalibratedSlice) {
  Result<ActionResult> result = ExpandAs(experiment_->user());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->visible_nodes, experiment_->product().visible_nodes);
}

TEST_F(UserVariationTest, DisjointEffectivityWindowSeesNothing) {
  pdmsys::UserContext late_user = experiment_->user();
  late_user.eff_from = 5000;
  late_user.eff_to = 6000;  // no generated link reaches this far
  Result<ActionResult> result = ExpandAs(late_user);
  ASSERT_TRUE(result.ok()) << result.status();
  // The root is at the client, but no link is traversable. Note the acc
  // flag is calibrated for the *reference* user, so only the link rule
  // prunes here — it alone already empties the expansion.
  EXPECT_EQ(result->visible_nodes, 0u);
}

TEST_F(UserVariationTest, DisjointOptionSetSeesNothing) {
  pdmsys::UserContext other_options = experiment_->user();
  other_options.strc_opt = 0x40;  // overlaps no generated link mask
  Result<ActionResult> result = ExpandAs(other_options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->visible_nodes, 0u);
}

TEST_F(UserVariationTest, WiderWindowSeesAtLeastAsMuch) {
  // A user whose window covers everything still fails links whose option
  // mask was the failure flavor — they see more than a disjoint-window
  // user but are bounded by the acc rule.
  pdmsys::UserContext wide = experiment_->user();
  wide.eff_from = 0;
  wide.eff_to = 10000;
  Result<ActionResult> reference = ExpandAs(experiment_->user());
  Result<ActionResult> wider = ExpandAs(wide);
  ASSERT_TRUE(reference.ok() && wider.ok());
  EXPECT_GE(wider->visible_nodes, reference->visible_nodes);
}

TEST_F(UserVariationTest, GrantRulesCombineWithOr) {
  // Per the paper (Section 4.1), multiple qualifying grants are OR-ed:
  // adding a *stricter* rule for eve on top of the wildcard acc rule
  // must NOT shrink what she sees (a grant never revokes).
  Result<std::unique_ptr<rules::RowCondition>> cond =
      rules::RowCondition::Parse("comp", "material = 'steel'");
  ASSERT_TRUE(cond.ok());
  rules::Rule rule;
  rule.user = "eve";
  rule.object_type = "comp";
  rule.condition = std::move(*cond);
  experiment_->rule_table().AddRule(std::move(rule));

  pdmsys::UserContext eve = experiment_->user();
  eve.name = "eve";
  Result<ActionResult> eve_tree = ExpandAs(eve);
  Result<ActionResult> scott_tree = ExpandAs(experiment_->user());
  ASSERT_TRUE(eve_tree.ok() && scott_tree.ok());
  EXPECT_GE(eve_tree->visible_nodes, scott_tree->visible_nodes);
}

TEST_F(UserVariationTest, PerUserRulesRestrictWhenTheyAreTheOnlyGrant) {
  // A rule table where eve's *only* component grant requires steel: the
  // restriction now bites (and scott-only rules don't apply to eve).
  rules::RuleTable table;
  {
    rules::Rule acc;
    acc.user = "scott";
    acc.condition = std::move(*rules::RowCondition::Parse("*", "acc = '+'"));
    table.AddRule(std::move(acc));
  }
  {
    rules::Rule eve_comp;
    eve_comp.user = "eve";
    eve_comp.object_type = "comp";
    eve_comp.condition = std::move(*rules::RowCondition::Parse(
        "comp", "material = 'steel' AND acc = '+'"));
    table.AddRule(std::move(eve_comp));
  }
  {
    rules::Rule eve_assy;
    eve_assy.user = "eve";
    eve_assy.object_type = "assy";
    eve_assy.condition =
        std::move(*rules::RowCondition::Parse("assy", "acc = '+'"));
    table.AddRule(std::move(eve_assy));
  }

  pdmsys::UserContext eve = experiment_->user();
  eve.name = "eve";
  RecursiveStrategy eve_strategy(&experiment_->connection(), &table, eve,
                                 ClientConfig{});
  Result<ActionResult> eve_tree =
      eve_strategy.MultiLevelExpand(experiment_->product().root_obid);
  ASSERT_TRUE(eve_tree.ok()) << eve_tree.status();

  RecursiveStrategy scott_strategy(&experiment_->connection(), &table,
                                   experiment_->user(), ClientConfig{});
  Result<ActionResult> scott_tree =
      scott_strategy.MultiLevelExpand(experiment_->product().root_obid);
  ASSERT_TRUE(scott_tree.ok());

  EXPECT_LE(eve_tree->visible_nodes, scott_tree->visible_nodes);
  // No non-steel component appears in eve's tree.
  Result<ResultSet> non_steel = experiment_->server().database().Query(
      "SELECT obid FROM comp WHERE material <> 'steel'");
  ASSERT_TRUE(non_steel.ok());
  for (const Row& row : non_steel->rows) {
    EXPECT_FALSE(
        eve_tree->tree.FindByObid(row[0].int64_value()).has_value());
  }
}

TEST_F(UserVariationTest, CheckOutDeniedAfterForeignCheckOut) {
  std::unique_ptr<CheckOutClient> checkout =
      experiment_->MakeCheckOutClient();
  int64_t root = experiment_->product().root_obid;

  // Scott checks out one inner assembly directly in the database (as if
  // a second client did it).
  Result<ResultSet> inner = experiment_->server().database().Query(
      "SELECT obid FROM assy WHERE acc = '+' AND obid <> " +
      std::to_string(root) + " LIMIT 1");
  ASSERT_TRUE(inner.ok());
  ASSERT_EQ(inner->num_rows(), 1u);
  ASSERT_TRUE(experiment_->server()
                  .database()
                  .Execute("UPDATE assy SET checkedout = TRUE WHERE obid = " +
                           std::to_string(inner->At(0, 0).int64_value()))
                  .ok());

  for (CheckOutMethod method :
       {CheckOutMethod::kNavigational, CheckOutMethod::kRecursiveBatched,
        CheckOutMethod::kStoredProcedure}) {
    Result<CheckOutResult> result = checkout->CheckOut(root, method);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_FALSE(result->success)
        << CheckOutMethodName(method) << " should be denied";
  }
}

}  // namespace
}  // namespace pdm::client
