// Tests for the rule layer: condition classification (paper Figure 1),
// SQL translation (5.3.1-5.3.3), user-variable instantiation, and the
// rule table's relevance filtering.

#include <gtest/gtest.h>

#include "rules/condition.h"
#include "rules/rule.h"
#include "sql/parser.h"

namespace pdm::rules {
namespace {

pdmsys::UserContext Scott() {
  pdmsys::UserContext user;
  user.name = "scott";
  user.strc_opt = 5;
  user.eff_from = 10;
  user.eff_to = 20;
  return user;
}

TEST(Conditions, RowConditionClassifiesAndTranslates) {
  Result<std::unique_ptr<RowCondition>> cond =
      RowCondition::Parse("assy", "make_or_buy <> 'buy'");
  ASSERT_TRUE(cond.ok()) << cond.status();
  EXPECT_EQ((*cond)->condition_class(), ConditionClass::kRow);
  EXPECT_EQ((*cond)->target_type(), "assy");

  Result<sql::ExprPtr> pred = (*cond)->Instantiate(Scott(), "assy");
  ASSERT_TRUE(pred.ok());
  EXPECT_EQ((*pred)->ToSql(), "assy.make_or_buy <> 'buy'");
}

TEST(Conditions, UserVariablesSubstituted) {
  Result<std::unique_ptr<RowCondition>> cond = RowCondition::Parse(
      "link",
      "BITAND(strc_opt, $user.strc_opt) <> 0 AND eff_from <= $user.eff_to");
  ASSERT_TRUE(cond.ok());
  Result<sql::ExprPtr> pred = (*cond)->Instantiate(Scott(), "link");
  ASSERT_TRUE(pred.ok());
  std::string sql = (*pred)->ToSql();
  EXPECT_NE(sql.find("BITAND(link.strc_opt, 5)"), std::string::npos) << sql;
  EXPECT_NE(sql.find("link.eff_from <= 20"), std::string::npos) << sql;
  EXPECT_EQ(sql.find("$user"), std::string::npos) << sql;
}

TEST(Conditions, UserNameSubstitutesAsStringLiteral) {
  Result<std::unique_ptr<RowCondition>> cond =
      RowCondition::Parse("doc", "owner = $user.name");
  ASSERT_TRUE(cond.ok());
  Result<sql::ExprPtr> pred = (*cond)->Instantiate(Scott(), "doc");
  ASSERT_TRUE(pred.ok());
  EXPECT_EQ((*pred)->ToSql(), "doc.owner = 'scott'");
}

TEST(Conditions, UnknownUserVariableRejected) {
  Result<std::unique_ptr<RowCondition>> cond =
      RowCondition::Parse("assy", "x = $user.shoe_size");
  ASSERT_TRUE(cond.ok());
  EXPECT_FALSE((*cond)->Instantiate(Scott(), "assy").ok());
}

TEST(Conditions, QualifiedRefsAreLeftAlone) {
  Result<std::unique_ptr<RowCondition>> cond =
      RowCondition::Parse("assy", "other.x = 1 AND y = 2");
  ASSERT_TRUE(cond.ok());
  Result<sql::ExprPtr> pred = (*cond)->Instantiate(Scott(), "assy");
  ASSERT_TRUE(pred.ok());
  EXPECT_EQ((*pred)->ToSql(), "(other.x = 1) AND (assy.y = 2)");
}

TEST(Conditions, ForAllRowsTranslation) {
  Result<sql::ExprPtr> row_pred = sql::ParseSqlExpression("dec = '+'");
  ASSERT_TRUE(row_pred.ok());
  ForAllRowsCondition cond("assy", std::move(*row_pred));
  EXPECT_EQ(cond.condition_class(), ConditionClass::kForAllRows);

  Result<sql::ExprPtr> translated =
      cond.TranslateForRecursiveTable(Scott(), "rtbl");
  ASSERT_TRUE(translated.ok());
  std::string sql = (*translated)->ToSql();
  // NOT EXISTS (SELECT * FROM rtbl WHERE type='assy' AND NOT (...)).
  EXPECT_NE(sql.find("NOT EXISTS (SELECT * FROM rtbl"), std::string::npos)
      << sql;
  EXPECT_NE(sql.find("rtbl.type = 'assy'"), std::string::npos) << sql;
  EXPECT_NE(sql.find("NOT (rtbl.dec = '+')"), std::string::npos) << sql;
}

TEST(Conditions, ForAllRowsWildcardTypeOmitsFilter) {
  Result<sql::ExprPtr> row_pred =
      sql::ParseSqlExpression("checkedout = FALSE");
  ForAllRowsCondition cond("", std::move(*row_pred));
  Result<sql::ExprPtr> translated =
      cond.TranslateForRecursiveTable(Scott(), "rtbl");
  ASSERT_TRUE(translated.ok());
  EXPECT_EQ((*translated)->ToSql().find("type ="), std::string::npos);
}

TEST(Conditions, ExistsStructureTranslation) {
  ExistsStructureCondition cond("comp", "specified_by", "spec");
  EXPECT_EQ(cond.condition_class(), ConditionClass::kExistsStructure);
  Result<sql::ExprPtr> pred = cond.Instantiate(Scott(), "comp");
  ASSERT_TRUE(pred.ok());
  std::string sql = (*pred)->ToSql();
  EXPECT_NE(sql.find("EXISTS (SELECT * FROM specified_by JOIN spec ON "
                     "specified_by.right = spec.obid WHERE "
                     "specified_by.left = comp.obid)"),
            std::string::npos)
      << sql;
}

TEST(Conditions, ExistsStructureWithOtherPredicate) {
  Result<sql::ExprPtr> extra =
      sql::ParseSqlExpression("doc_size > $user.strc_opt");
  ExistsStructureCondition cond("comp", "specified_by", "spec",
                                std::move(*extra));
  Result<sql::ExprPtr> pred = cond.Instantiate(Scott(), "comp");
  ASSERT_TRUE(pred.ok());
  std::string sql = (*pred)->ToSql();
  EXPECT_NE(sql.find("spec.doc_size > 5"), std::string::npos) << sql;
}

TEST(Conditions, ForAllRowsOverExistsStructure) {
  // The Section 5.5 remark: ∀rows whose inner condition is ∃structure.
  auto structure = std::make_unique<ExistsStructureCondition>(
      "comp", "specified_by", "spec");
  ForAllRowsCondition cond("comp", std::move(structure));
  Result<sql::ExprPtr> translated =
      cond.TranslateForRecursiveTable(Scott(), "rtbl");
  ASSERT_TRUE(translated.ok());
  std::string sql = (*translated)->ToSql();
  // The ∃structure now correlates on the homogenized table.
  EXPECT_NE(sql.find("specified_by.left = rtbl.obid"), std::string::npos)
      << sql;
  EXPECT_NE(sql.find("NOT EXISTS (SELECT * FROM rtbl"), std::string::npos)
      << sql;
}

TEST(Conditions, TreeAggregateTranslation) {
  TreeAggregateCondition cond(AggKind::kCountStar, "", "assy",
                              sql::BinaryOp::kLessEq, Value::Int64(10));
  EXPECT_EQ(cond.condition_class(), ConditionClass::kTreeAggregate);
  Result<sql::ExprPtr> pred = cond.TranslateForRecursiveTable("rtbl");
  ASSERT_TRUE(pred.ok());
  EXPECT_EQ((*pred)->ToSql(),
            "(SELECT COUNT(*) FROM rtbl WHERE rtbl.type = 'assy') <= 10");
}

TEST(Conditions, TreeAggregateWithAttribute) {
  TreeAggregateCondition cond(AggKind::kAvg, "weight", "",
                              sql::BinaryOp::kLessEq, Value::Double(12.0));
  Result<sql::ExprPtr> pred = cond.TranslateForRecursiveTable("rtbl");
  ASSERT_TRUE(pred.ok());
  EXPECT_EQ((*pred)->ToSql(), "(SELECT AVG(rtbl.weight) FROM rtbl) <= 12");
}

TEST(Conditions, NonCountAggregateWithoutAttributeRejected) {
  TreeAggregateCondition cond(AggKind::kAvg, "", "", sql::BinaryOp::kLess,
                              Value::Int64(1));
  EXPECT_FALSE(cond.TranslateForRecursiveTable("rtbl").ok());
}

TEST(Conditions, CloneIsDeep) {
  Result<std::unique_ptr<RowCondition>> cond =
      RowCondition::Parse("assy", "dec = '+'");
  ConditionPtr clone = (*cond)->Clone();
  EXPECT_EQ(clone->condition_class(), ConditionClass::kRow);
  EXPECT_EQ(clone->Describe(), (*cond)->Describe());
}

// --- RuleTable -------------------------------------------------------------

Rule MakeRule(std::string user, RuleAction action, std::string type) {
  Rule rule;
  rule.user = std::move(user);
  rule.action = action;
  rule.object_type = std::move(type);
  rule.condition = std::move(*RowCondition::Parse(rule.object_type, "1 = 1"));
  return rule;
}

TEST(RuleTable, RelevanceFiltering) {
  RuleTable table;
  table.AddRule(MakeRule("scott", RuleAction::kMultiLevelExpand, "assy"));
  table.AddRule(MakeRule("*", RuleAction::kAccess, "link"));
  table.AddRule(MakeRule("jones", RuleAction::kMultiLevelExpand, "assy"));

  // User match incl. wildcard.
  EXPECT_EQ(
      table.FetchRelevant("scott", RuleAction::kMultiLevelExpand).size(),
      2u);  // scott's rule + wildcard access rule
  EXPECT_EQ(table.FetchRelevant("jones", RuleAction::kMultiLevelExpand).size(),
            2u);
  EXPECT_EQ(table.FetchRelevant("eve", RuleAction::kMultiLevelExpand).size(),
            1u);  // only the wildcard access rule

  // Access rules apply to any action; specific rules only to theirs.
  EXPECT_EQ(table.FetchRelevant("scott", RuleAction::kCheckOut).size(), 1u);

  // Type filter.
  EXPECT_EQ(table
                .FetchRelevant("scott", RuleAction::kMultiLevelExpand,
                               std::nullopt, "assy")
                .size(),
            1u);
  // Class filter.
  EXPECT_EQ(table
                .FetchRelevant("scott", RuleAction::kMultiLevelExpand,
                               ConditionClass::kForAllRows)
                .size(),
            0u);
}

TEST(RuleTable, WildcardTypeMatchesSpecificQueries) {
  RuleTable table;
  table.AddRule(MakeRule("*", RuleAction::kAccess, "*"));
  EXPECT_EQ(table
                .FetchRelevant("anyone", RuleAction::kQuery, std::nullopt,
                               "comp")
                .size(),
            1u);
}

}  // namespace
}  // namespace pdm::rules
