// Tests for the Section 5.5 query modification: each rule class lands in
// the right SELECTs, and the modified queries execute correctly against
// the paper's example data.

#include <gtest/gtest.h>

#include "engine/database.h"
#include "pdm/generator.h"
#include "rules/procedures.h"
#include "rules/query_builder.h"
#include "rules/query_modificator.h"
#include "sql/parser.h"

namespace pdm::rules {
namespace {

pdmsys::UserContext TestUser() {
  pdmsys::UserContext user;
  user.name = "scott";
  user.strc_opt = 1;
  user.eff_from = 40;
  user.eff_to = 60;
  return user;
}

class ModificatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    pdmsys::GeneratorConfig config;
    config.depth = 3;
    config.branching = 3;
    config.sigma = 1.0;  // everything passes the link calibration
    config.user = TestUser();
    Result<pdmsys::GeneratedProduct> product =
        pdmsys::GenerateProduct(&db_, config);
    ASSERT_TRUE(product.ok()) << product.status();
    product_ = *product;
  }

  Result<ModificationSummary> Modify(sql::SelectStmt* stmt,
                                     RuleAction action) {
    QueryModificator modificator(&rules_, TestUser());
    return modificator.ApplyToRecursiveQuery(stmt, action);
  }

  Database db_;
  RuleTable rules_;
  pdmsys::GeneratedProduct product_;
};

TEST_F(ModificatorTest, RowConditionsLandInsideAndOutside) {
  Rule rule;
  rule.object_type = "link";
  rule.condition = std::move(*RowCondition::Parse("link", "eff_from <= 50"));
  rules_.AddRule(std::move(rule));

  std::unique_ptr<sql::SelectStmt> stmt =
      BuildRecursiveTreeQuery(product_.root_obid);
  Result<ModificationSummary> summary =
      Modify(stmt.get(), RuleAction::kMultiLevelExpand);
  ASSERT_TRUE(summary.ok()) << summary.status();
  EXPECT_GT(summary->row_conditions, 0u);

  // Inside: both recursive members join link -> the predicate appears in
  // their WHERE. Outside: the link member of the outer query.
  const sql::QueryExpr& cte = *stmt->ctes[0].query;
  EXPECT_EQ(cte.terms[0].where->ToSql().find("eff_from"),
            std::string::npos);  // seed references assy only
  EXPECT_NE(cte.terms[1].where->ToSql().find("link.eff_from <= 50"),
            std::string::npos);
  EXPECT_NE(cte.terms[2].where->ToSql().find("link.eff_from <= 50"),
            std::string::npos);
  EXPECT_NE(stmt->query.terms[1].where->ToSql().find("link.eff_from <= 50"),
            std::string::npos);
  // The outer object member scans rtbl only: no injection.
  EXPECT_EQ(stmt->query.terms[0].where, nullptr);
}

TEST_F(ModificatorTest, RowConditionsOfSameGroupAreOrCombined) {
  Rule a;
  a.object_type = "assy";
  a.condition = std::move(*RowCondition::Parse("assy", "dec = '+'"));
  rules_.AddRule(std::move(a));
  Rule b;
  b.object_type = "assy";
  b.condition = std::move(*RowCondition::Parse("assy", "make_or_buy = 'make'"));
  rules_.AddRule(std::move(b));

  std::unique_ptr<sql::SelectStmt> stmt =
      BuildRecursiveTreeQuery(product_.root_obid);
  ASSERT_TRUE(Modify(stmt.get(), RuleAction::kMultiLevelExpand).ok());
  std::string where = stmt->ctes[0].query->terms[1].where->ToSql();
  EXPECT_NE(where.find("(assy.dec = '+') OR (assy.make_or_buy = 'make')"),
            std::string::npos)
      << where;
}

TEST_F(ModificatorTest, ForAllRowsLandsOutsideOnly) {
  Rule rule;
  rule.action = RuleAction::kCheckOut;
  rule.condition = std::make_unique<ForAllRowsCondition>(
      "", std::move(*sql::ParseSqlExpression("checkedout = FALSE")));
  rules_.AddRule(std::move(rule));

  std::unique_ptr<sql::SelectStmt> stmt =
      BuildRecursiveTreeQuery(product_.root_obid);
  Result<ModificationSummary> summary =
      Modify(stmt.get(), RuleAction::kCheckOut);
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->forall_rows, 1u);

  // Not inside the recursion...
  for (const sql::SelectCore& term : stmt->ctes[0].query->terms) {
    if (term.where != nullptr) {
      EXPECT_EQ(term.where->ToSql().find("NOT EXISTS"), std::string::npos);
    }
  }
  // ...but in every outer SELECT.
  for (const sql::SelectCore& term : stmt->query.terms) {
    ASSERT_NE(term.where, nullptr);
    EXPECT_NE(term.where->ToSql().find("NOT EXISTS (SELECT * FROM rtbl"),
              std::string::npos);
  }
}

TEST_F(ModificatorTest, ExistsStructureLandsOnTheTargetTypeMember) {
  Rule rule;
  rule.object_type = "comp";
  rule.condition = std::make_unique<ExistsStructureCondition>(
      "comp", "specified_by", "spec");
  rules_.AddRule(std::move(rule));

  std::unique_ptr<sql::SelectStmt> stmt =
      BuildRecursiveTreeQuery(product_.root_obid);
  Result<ModificationSummary> summary =
      Modify(stmt.get(), RuleAction::kMultiLevelExpand);
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->exists_structure, 1u);

  const sql::QueryExpr& cte = *stmt->ctes[0].query;
  // The assy member keeps only its hierarchy predicate; the comp member
  // gets the EXISTS appended.
  ASSERT_NE(cte.terms[1].where, nullptr);
  EXPECT_EQ(cte.terms[1].where->ToSql().find("EXISTS"), std::string::npos);
  ASSERT_NE(cte.terms[2].where, nullptr);
  EXPECT_NE(cte.terms[2].where->ToSql().find("specified_by.left = comp.obid"),
            std::string::npos);
}

TEST_F(ModificatorTest, TreeAggregateAllOrNothingExecutes) {
  Rule rule;
  rule.condition = std::make_unique<TreeAggregateCondition>(
      AggKind::kCountStar, "", "assy", sql::BinaryOp::kLessEq,
      Value::Int64(3));
  rules_.AddRule(std::move(rule));

  std::unique_ptr<sql::SelectStmt> stmt =
      BuildRecursiveTreeQuery(product_.root_obid);
  ASSERT_TRUE(Modify(stmt.get(), RuleAction::kMultiLevelExpand).ok());
  ResultSet rs;
  ASSERT_TRUE(db_.ExecuteStatement(*stmt, &rs).ok());
  // The σ=1 tree has 1+3+9 = 13 assemblies (> 3): all-or-nothing empties
  // the result.
  EXPECT_EQ(rs.num_rows(), 0u);

  // Relax the threshold: the whole tree comes back.
  RuleTable relaxed;
  Rule ok_rule;
  ok_rule.condition = std::make_unique<TreeAggregateCondition>(
      AggKind::kCountStar, "", "assy", sql::BinaryOp::kLessEq,
      Value::Int64(100));
  relaxed.AddRule(std::move(ok_rule));
  std::unique_ptr<sql::SelectStmt> stmt2 =
      BuildRecursiveTreeQuery(product_.root_obid);
  QueryModificator modificator(&relaxed, TestUser());
  ASSERT_TRUE(
      modificator
          .ApplyToRecursiveQuery(stmt2.get(), RuleAction::kMultiLevelExpand)
          .ok());
  ASSERT_TRUE(db_.ExecuteStatement(*stmt2, &rs).ok());
  // 13 assy + 27 comp + 39 links.
  EXPECT_EQ(rs.num_rows(), 79u);
}

TEST_F(ModificatorTest, RequiresARecursiveQuery) {
  sql::SelectStmt flat;
  Result<ModificationSummary> summary =
      Modify(&flat, RuleAction::kMultiLevelExpand);
  ASSERT_FALSE(summary.ok());
  EXPECT_EQ(summary.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ModificatorTest, NavigationalInjectionSkipsTreeConditions) {
  Rule forall;
  forall.condition = std::make_unique<ForAllRowsCondition>(
      "", std::move(*sql::ParseSqlExpression("checkedout = FALSE")));
  rules_.AddRule(std::move(forall));
  Rule row;
  row.object_type = "assy";
  row.condition = std::move(*RowCondition::Parse("assy", "acc = '+'"));
  rules_.AddRule(std::move(row));

  std::unique_ptr<sql::SelectStmt> expand =
      BuildExpandQuery(product_.root_obid);
  QueryModificator modificator(&rules_, TestUser());
  Result<ModificationSummary> summary = modificator.ApplyToNavigationalQuery(
      &expand->query, RuleAction::kExpand);
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->forall_rows, 0u);
  EXPECT_GT(summary->row_conditions, 0u);
  EXPECT_NE(expand->query.terms[0].where->ToSql().find("assy.acc = '+'"),
            std::string::npos);
}

TEST_F(ModificatorTest, ModifiedQueryStillRoundTripsThroughTheParser) {
  Rule rule;
  rule.object_type = "link";
  rule.condition = std::move(*RowCondition::Parse(
      "link",
      "BITAND(strc_opt, $user.strc_opt) <> 0 AND eff_from <= $user.eff_to"));
  rules_.AddRule(std::move(rule));
  std::unique_ptr<sql::SelectStmt> stmt =
      BuildRecursiveTreeQuery(product_.root_obid);
  ASSERT_TRUE(Modify(stmt.get(), RuleAction::kMultiLevelExpand).ok());
  std::string sql = stmt->ToSql();
  Result<sql::StatementPtr> parsed = sql::ParseSql(sql);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ((*parsed)->ToSql(), sql);
}

}  // namespace
}  // namespace pdm::rules
