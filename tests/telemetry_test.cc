// Tests for the quantile-accurate telemetry layer (DESIGN.md 5k): the
// HDR-style LogHistogram's documented error bound against exact
// nearest-rank quantiles, the double-accumulated Histogram sum (the
// int64-nanounit overflow regression), labeled metric families and the
// cardinality guard, the slow-query log's ring bound and top-K
// exactness, DbServer's end-to-end slow-query capture, the snapshot
// JSON round trip, and an 8-thread TSan canary on shared labeled
// histograms.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "client/experiment.h"
#include "common/string_util.h"
#include "exec/exec_context.h"
#include "obs/log_histogram.h"
#include "obs/metrics.h"
#include "obs/snapshot.h"
#include "server/admission_queue.h"
#include "server/db_server.h"
#include "server/slow_query_log.h"

namespace pdm {
namespace {

using client::Experiment;
using client::ExperimentConfig;
using model::ActionKind;
using model::StrategyKind;

/// Exact nearest-rank quantile of a sorted sample: the value of element
/// ceil(q * n) (1-based) — the definition LogHistogram::Quantile
/// documents, evaluated without bucketing.
double ExactQuantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  size_t rank = static_cast<size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  if (rank == 0) rank = 1;
  if (rank > sorted.size()) rank = sorted.size();
  return sorted[rank - 1];
}

/// Asserts Quantile(q) stays within the documented relative error of
/// the exact nearest-rank answer for every probed quantile.
void CheckQuantiles(const obs::LogHistogram& hist,
                    std::vector<double> values) {
  std::sort(values.begin(), values.end());
  for (double q : {0.01, 0.10, 0.50, 0.90, 0.99, 0.999, 1.0}) {
    const double exact = ExactQuantile(values, q);
    const double approx = hist.Quantile(q);
    // The bound is relative for values >= 1 ns; allow half a nanosecond
    // of absolute slack for the sub-nanosecond linear region.
    const double tolerance =
        obs::LogHistogram::kMaxRelativeError * exact + 0.5e-9;
    EXPECT_NEAR(approx, exact, tolerance) << "q=" << q;
  }
}

TEST(LogHistogramTest, QuantileAccuracyUniform) {
  std::mt19937 rng(20260808);
  std::uniform_real_distribution<double> dist(1e-6, 1.0);
  obs::LogHistogram hist;
  std::vector<double> values;
  values.reserve(20000);
  for (int i = 0; i < 20000; ++i) {
    double v = dist(rng);
    values.push_back(v);
    hist.Observe(v);
  }
  EXPECT_EQ(hist.total_count(), 20000u);
  CheckQuantiles(hist, values);
}

TEST(LogHistogramTest, QuantileAccuracyExponential) {
  // Latency-shaped: exponential with a 10 ms mean spans ~5 decades.
  std::mt19937 rng(7);
  std::exponential_distribution<double> dist(100.0);
  obs::LogHistogram hist;
  std::vector<double> values;
  values.reserve(20000);
  for (int i = 0; i < 20000; ++i) {
    double v = dist(rng);
    values.push_back(v);
    hist.Observe(v);
  }
  CheckQuantiles(hist, values);
}

TEST(LogHistogramTest, QuantileAccuracyAdversarialBucketEdges) {
  // Powers of two in nanoseconds sit exactly on octave boundaries — the
  // worst case for a log-linear binning scheme's rounding.
  obs::LogHistogram hist;
  std::vector<double> values;
  for (int k = 0; k <= 40; ++k) {
    const double v = static_cast<double>(uint64_t{1} << k) * 1e-9;
    for (int rep = 0; rep < 25; ++rep) {
      values.push_back(v);
      hist.Observe(v);
    }
  }
  CheckQuantiles(hist, values);
}

TEST(LogHistogramTest, ExtremesClampWithoutLosingCounts) {
  obs::LogHistogram hist;
  hist.Observe(-1.0);    // clamps to 0
  hist.Observe(0.0);
  hist.Observe(1e9);     // ~31 years: clamps into the final bucket
  EXPECT_EQ(hist.total_count(), 3u);
  EXPECT_DOUBLE_EQ(hist.min(), 0.0);
  // min/max clamp to the trackable ceiling (~73 min) like the buckets;
  // the sum keeps the true magnitude.
  EXPECT_GT(hist.max(), 4000.0);
  EXPECT_LT(hist.max(), 5000.0);
  EXPECT_DOUBLE_EQ(hist.sum(), 1e9);
  EXPECT_GT(hist.Quantile(1.0), 0.0);
}

TEST(LogHistogramTest, MergeAddsCountsAndMinMax) {
  obs::LogHistogram a;
  obs::LogHistogram b;
  a.Observe(0.001);
  b.Observe(0.1);
  b.Observe(10.0);
  a.Merge(b);
  EXPECT_EQ(a.total_count(), 3u);
  EXPECT_DOUBLE_EQ(a.min(), 0.001);
  EXPECT_DOUBLE_EQ(a.max(), 10.0);
  EXPECT_NEAR(a.sum(), 10.101, 1e-9);
}

// Regression: the fixed-bucket histogram used to accumulate its sum in
// int64 nanounits, which overflowed past ~9.2e9 units and turned byte
// totals negative. The double-bits CAS accumulator must reproduce large
// sums exactly (single-threaded adds are deterministic).
TEST(HistogramTest, LargeValueSumDoesNotOverflow) {
  obs::Histogram hist({1.0, 1e6, 1e12});
  hist.Observe(2e10);
  hist.Observe(2e10);
  hist.Observe(1e15);
  EXPECT_DOUBLE_EQ(hist.sum(), 2e10 + 2e10 + 1e15);
  EXPECT_EQ(hist.total_count(), 3u);
}

TEST(MetricsRegistryTest, LabelCardinalityGuardBoundsFamilies) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  // A family name unique to this test: the registry is process-global
  // and admitted label sets are never evicted.
  const std::string family = "test.cardinality_guard_counters";
  for (int i = 0; i < 200; ++i) {
    reg.counter(family, {{"id", StrFormat("%d", i)}}).Increment();
  }
  size_t admitted = 0;
  uint64_t overflow_value = 0;
  bool saw_overflow = false;
  for (const obs::LabeledCounterSnapshot& c : reg.LabeledCounterSnapshots()) {
    if (c.name != family) continue;
    if (c.labels == obs::LabelSet{{"overflow", "true"}}) {
      saw_overflow = true;
      overflow_value = c.value;
    } else {
      ++admitted;
      EXPECT_EQ(c.value, 1u) << "admitted instrument double-counted";
    }
  }
  EXPECT_EQ(admitted, obs::MetricsRegistry::kMaxLabelSetsPerFamily);
  ASSERT_TRUE(saw_overflow);
  // Every rejected lookup lands on the shared overflow instrument.
  EXPECT_EQ(overflow_value,
            200u - obs::MetricsRegistry::kMaxLabelSetsPerFamily);
  uint64_t dropped = 0;
  for (const obs::CounterSnapshot& c : reg.CounterSnapshots()) {
    if (c.name == "obs.label_sets_dropped") dropped = c.value;
  }
  EXPECT_GE(dropped, 200u - obs::MetricsRegistry::kMaxLabelSetsPerFamily);
}

TEST(MetricsRegistryTest, LogHistogramFamilyGuardSharesOverflow) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  const std::string family = "test.cardinality_guard_hist";
  for (int i = 0; i < 100; ++i) {
    reg.log_histogram(family, {{"id", StrFormat("%d", i)}}).Observe(0.001);
  }
  size_t admitted = 0;
  uint64_t overflow_count = 0;
  for (const obs::LogHistogramSnapshot& h : reg.LogHistogramSnapshots()) {
    if (h.name != family) continue;
    if (h.labels == obs::LabelSet{{"overflow", "true"}}) {
      overflow_count = h.total_count;
    } else {
      ++admitted;
    }
  }
  EXPECT_EQ(admitted, obs::MetricsRegistry::kMaxLabelSetsPerFamily);
  EXPECT_EQ(overflow_count,
            100u - obs::MetricsRegistry::kMaxLabelSetsPerFamily);
}

TEST(MetricsRegistryTest, LabelOrderIsCanonicalized) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  obs::Counter& a =
      reg.counter("test.label_order", {{"x", "1"}, {"y", "2"}});
  obs::Counter& b =
      reg.counter("test.label_order", {{"y", "2"}, {"x", "1"}});
  EXPECT_EQ(&a, &b);
}

TEST(MetricsRegistryTest, GaugeTracksUpAndDown) {
  obs::Gauge& g = obs::MetricsRegistry::Global().gauge("test.gauge");
  g.Reset();
  g.Increment();
  g.Add(4);
  g.Decrement();
  EXPECT_EQ(g.value(), 4);
  g.Sub(10);
  EXPECT_EQ(g.value(), -6);
  g.Set(42);
  EXPECT_EQ(g.value(), 42);
}

SlowQueryRecord MakeRecord(double sim, double wall = 0) {
  SlowQueryRecord r;
  r.sql = StrFormat("SELECT %f", sim);
  r.sim_server_seconds = sim;
  r.wall_seconds = wall;
  return r;
}

TEST(SlowQueryLogTest, RingIsBoundedAndCountsDrops) {
  SlowQueryLog log;
  SlowQueryLog::Limits limits{/*threshold_seconds=*/0.001,
                              /*ring_capacity=*/4, /*top_k=*/3};
  size_t evicted = 0;
  for (int i = 1; i <= 10; ++i) {
    SlowQueryRecord r = MakeRecord(0.01 * i);
    ASSERT_TRUE(log.MightRecord(limits, r.sim_server_seconds, 0));
    evicted += log.Note(limits, std::move(r));
  }
  std::vector<SlowQueryRecord> ring = log.OverThreshold();
  ASSERT_EQ(ring.size(), 4u);  // oldest evicted, newest kept
  EXPECT_DOUBLE_EQ(ring.front().sim_server_seconds, 0.07);
  EXPECT_DOUBLE_EQ(ring.back().sim_server_seconds, 0.10);
  EXPECT_EQ(log.dropped(), 6u);
  EXPECT_EQ(evicted, 6u);
}

TEST(SlowQueryLogTest, TopKIsExactAndSorted) {
  SlowQueryLog log;
  SlowQueryLog::Limits limits{/*threshold_seconds=*/0,
                              /*ring_capacity=*/4, /*top_k=*/3};
  // Interleaved order so the heap actually churns.
  for (double sim : {0.05, 0.01, 0.09, 0.03, 0.07, 0.02, 0.08}) {
    log.Note(limits, MakeRecord(sim));
  }
  std::vector<SlowQueryRecord> top = log.TopK();
  ASSERT_EQ(top.size(), 3u);
  EXPECT_DOUBLE_EQ(top[0].sim_server_seconds, 0.09);
  EXPECT_DOUBLE_EQ(top[1].sim_server_seconds, 0.08);
  EXPECT_DOUBLE_EQ(top[2].sim_server_seconds, 0.07);
  // Threshold disabled: nothing goes to the ring.
  EXPECT_TRUE(log.OverThreshold().empty());
  // The fast path rejects anything at or below the kept minimum once
  // the heap is full...
  EXPECT_FALSE(log.MightRecord(limits, 0.06, 0));
  EXPECT_FALSE(log.MightRecord(limits, 0.07, 0));
  // ...and admits anything more expensive.
  EXPECT_TRUE(log.MightRecord(limits, 0.071, 0));
  log.Clear();
  EXPECT_TRUE(log.TopK().empty());
  EXPECT_TRUE(log.MightRecord(limits, 1e-9, 0));  // heap empty again
}

TEST(SlowQueryLogTest, WallTimeAloneCanCrossThreshold) {
  SlowQueryLog log;
  SlowQueryLog::Limits limits{/*threshold_seconds=*/0.5,
                              /*ring_capacity=*/8, /*top_k=*/0};
  // Simulated cost is tiny but the wall clock stalled (lock wait, page
  // fault storm): the statement still belongs in the slow log.
  log.Note(limits, MakeRecord(1e-6, /*wall=*/2.0));
  ASSERT_EQ(log.OverThreshold().size(), 1u);
  EXPECT_FALSE(log.MightRecord(limits, 0.1, 0.1));
}

TEST(SlowQueryClassifyTest, ClassificationFollowsPrecedence) {
  ExecStats stats;
  EXPECT_EQ(ClassifyStatementClass("INSERT INTO t VALUES (1)", stats), "dml");
  EXPECT_EQ(ClassifyStatementClass("  update t set a = 1", stats), "dml");
  EXPECT_EQ(ClassifyStatementClass("DELETE FROM t", stats), "dml");
  EXPECT_EQ(ClassifyStatementClass(
                "WITH RECURSIVE r AS (SELECT 1) SELECT * FROM r", stats),
            "expand");
  EXPECT_EQ(ClassifyStatementClass(
                "SELECT * FROM link WHERE link.left = 'x'", stats),
            "expand");
  stats.cte_rows_scanned = 5;
  EXPECT_EQ(ClassifyStatementClass("SELECT 1", stats), "expand");
  stats = ExecStats{};
  stats.agg_input_rows = 10;
  EXPECT_EQ(ClassifyStatementClass("SELECT count(*) FROM t", stats), "agg");
  stats = ExecStats{};
  stats.join_probe_rows = 10;
  EXPECT_EQ(ClassifyStatementClass("SELECT ...", stats), "join");
  stats = ExecStats{};
  stats.index_scans = 1;
  EXPECT_EQ(ClassifyStatementClass("SELECT ...", stats), "point");
  stats = ExecStats{};
  EXPECT_EQ(ClassifyStatementClass("SELECT * FROM t", stats), "scan");

  EXPECT_EQ(EngineLabel(stats), "row");
  stats.vec_rows_scanned = 1;
  EXPECT_EQ(EngineLabel(stats), "vec");
}

TEST(DbServerTest, CapturesSlowQueriesWithBreakdown) {
  obs::MetricsRegistry::Global().ResetAll();
  ExperimentConfig config;
  config.generator.depth = 2;
  config.generator.branching = 3;
  config.generator.sigma = 1.0;
  Result<std::unique_ptr<Experiment>> experiment =
      Experiment::Create(config);
  ASSERT_TRUE(experiment.ok()) << experiment.status();
  Experiment& e = **experiment;
  // Record everything: any positive simulated or wall cost qualifies.
  e.server().mutable_config().slow_query_threshold = 1e-12;

  ASSERT_TRUE(e.RunAction(StrategyKind::kNavigationalLate,
                          ActionKind::kMultiLevelExpand)
                  .ok());

  std::vector<SlowQueryRecord> top = e.server().slow_query_log().TopK();
  ASSERT_FALSE(top.empty());
  const SlowQueryRecord& worst = top.front();
  EXPECT_FALSE(worst.sql.empty());
  EXPECT_FALSE(worst.fingerprint.empty());
  EXPECT_EQ(worst.site, "local");
  EXPECT_TRUE(worst.stmt_class == "expand" || worst.stmt_class == "scan" ||
              worst.stmt_class == "point")
      << worst.stmt_class;
  EXPECT_GT(worst.sim_server_seconds, 0.0);
  EXPECT_GE(worst.wall_seconds, 0.0);
  // The per-term breakdown made it into the record and its summary.
  EXPECT_NE(worst.plan_summary.find("scan="), std::string::npos);
  EXPECT_FALSE(e.server().slow_query_log().OverThreshold().empty());

  std::string json = e.server().SlowQueryTopKJson();
  EXPECT_NE(json.find("\"sim_server_seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"stmt_class\""), std::string::npos);

  // The labeled statement histogram saw the same traffic.
  bool saw_stmt_family = false;
  for (const obs::LogHistogramSnapshot& h :
       obs::MetricsRegistry::Global().LogHistogramSnapshots()) {
    if (h.name == "server.statement_sim_seconds" && h.total_count > 0) {
      saw_stmt_family = true;
      obs::LabelSet expected_site{{"site", "local"}};
      bool has_site = false;
      for (const auto& [key, value] : h.labels) {
        if (key == "site") has_site = value == "local";
      }
      EXPECT_TRUE(has_site) << h.name;
    }
  }
  EXPECT_TRUE(saw_stmt_family);

  // ResetObservability starts a fresh window.
  e.server().ResetObservability();
  EXPECT_TRUE(e.server().slow_query_log().TopK().empty());
}

TEST(SnapshotTest, JsonRoundTripPreservesEveryInstrument) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  reg.ResetAll();
  reg.counter("test.rt_counter").Add(7);
  reg.counter("test.rt_labeled", {{"site", "hq"}}).Add(3);
  reg.gauge("test.rt_gauge").Set(-5);
  reg.histogram("test.rt_hist", {1.0, 2.0}).Observe(1.5);
  reg.log_histogram("test.rt_log").Observe(0.25);
  reg.log_histogram("test.rt_log_labeled", {{"site", "hq"}, {"e", "vec"}})
      .Observe(0.125);

  obs::MetricsSnapshot snapshot =
      obs::CaptureMetricsSnapshot("round-trip-test");
  std::string json = obs::SnapshotToJson(snapshot);
  Result<obs::MetricsSnapshot> parsed = obs::ParseSnapshotJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status();

  EXPECT_EQ(parsed->version, obs::MetricsSnapshot::kVersion);
  EXPECT_EQ(parsed->label, "round-trip-test");
  ASSERT_EQ(parsed->counters.size(), snapshot.counters.size());
  for (size_t i = 0; i < snapshot.counters.size(); ++i) {
    EXPECT_EQ(parsed->counters[i].name, snapshot.counters[i].name);
    EXPECT_EQ(parsed->counters[i].value, snapshot.counters[i].value);
  }
  ASSERT_EQ(parsed->gauges.size(), snapshot.gauges.size());
  for (size_t i = 0; i < snapshot.gauges.size(); ++i) {
    EXPECT_EQ(parsed->gauges[i].value, snapshot.gauges[i].value);
  }
  ASSERT_EQ(parsed->labeled_counters.size(),
            snapshot.labeled_counters.size());
  ASSERT_EQ(parsed->histograms.size(), snapshot.histograms.size());
  ASSERT_EQ(parsed->log_histograms.size(), snapshot.log_histograms.size());
  for (size_t i = 0; i < snapshot.log_histograms.size(); ++i) {
    const obs::LogHistogramSnapshot& a = snapshot.log_histograms[i];
    const obs::LogHistogramSnapshot& b = parsed->log_histograms[i];
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.labels, b.labels);
    EXPECT_EQ(a.total_count, b.total_count);
    EXPECT_DOUBLE_EQ(a.p50, b.p50);
    EXPECT_DOUBLE_EQ(a.p999, b.p999);
  }

  // Prometheus text: dots become underscores, labels render, quantile
  // summaries appear for log histograms.
  std::string prom = obs::SnapshotToPrometheusText(snapshot);
  EXPECT_NE(prom.find("test_rt_counter 7"), std::string::npos);
  EXPECT_NE(prom.find("site=\"hq\""), std::string::npos);
  EXPECT_NE(prom.find("quantile=\"0.99\""), std::string::npos);

  // Malformed input and future versions are rejected, not misparsed.
  EXPECT_FALSE(obs::ParseSnapshotJson("{not json").ok());
  EXPECT_FALSE(obs::ParseSnapshotJson("{\"version\": 999}").ok());
}

// TSan canary: 8 writers share four labeled histograms (the realistic
// site x engine shape) while 2 readers take quantile snapshots. Run
// under PDM_THREAD_SANITIZE to verify the relaxed-atomic contract.
TEST(TelemetryConcurrencyTest, LabeledHistogramsConcurrentObserve) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  std::vector<obs::LogHistogram*> hists;
  for (const char* site : {"a", "b"}) {
    for (const char* engine : {"row", "vec"}) {
      hists.push_back(&reg.log_histogram(
          "test.concurrent_stmt", {{"site", site}, {"engine", engine}}));
      hists.back()->Reset();
    }
  }
  constexpr int kWriters = 8;
  constexpr int kPerWriter = 4000;
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&hists, w] {
      std::mt19937 rng(1000 + w);
      std::exponential_distribution<double> dist(1000.0);
      for (int i = 0; i < kPerWriter; ++i) {
        hists[static_cast<size_t>(i + w) % hists.size()]->Observe(dist(rng));
      }
    });
  }
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&hists, &stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        for (obs::LogHistogram* h : hists) {
          double p99 = h->Quantile(0.99);
          EXPECT_GE(p99, 0.0);
          (void)h->sum();
          (void)h->total_count();
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();

  uint64_t total = 0;
  for (obs::LogHistogram* h : hists) total += h->total_count();
  EXPECT_EQ(total, static_cast<uint64_t>(kWriters) * kPerWriter);
}

// Reset-everything regression (audit of DbServer::ResetObservability):
// populate EVERY observability surface the server claims to reset —
// all five registry instrument kinds (plain/labeled counters, gauges,
// both histogram kinds), the statement log, the slow-query ring AND
// top-K, the plan-cache counters, the admission queue's wave log and
// the tracer's finished spans — then assert one ResetObservability call
// leaves each of them empty. A surface that slips through here
// double-counts in the next measurement window.
TEST(DbServerTest, ResetObservabilityResetsEverySurface) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  ExperimentConfig config;
  config.generator.depth = 2;
  config.generator.branching = 3;
  Result<std::unique_ptr<Experiment>> experiment = Experiment::Create(config);
  ASSERT_TRUE(experiment.ok()) << experiment.status();
  Experiment& e = **experiment;
  e.server().EnableStatementLog(true);
  e.server().mutable_config().slow_query_threshold = 1e-12;

  // Registry: one instrument of every kind, beyond what the action
  // populates organically.
  reg.counter("reset_test.counter").Add(3);
  reg.counter("reset_test.labeled", {{"site", "hq"}}).Add(5);
  reg.gauge("reset_test.gauge").Set(7);
  reg.histogram("reset_test.hist", {1.0, 2.0}).Observe(1.5);
  reg.log_histogram("reset_test.log", {{"site", "hq"}}).Observe(0.5);

  // Wave traffic (queue wave log), statement log, slow-query log,
  // plan-cache counters and tracer spans.
  obs::Tracer::Global().Enable(true);
  e.connection().AttachToAdmissionQueue(1);
  ASSERT_TRUE(
      e.RunAction(StrategyKind::kBatchedEarly, ActionKind::kMultiLevelExpand)
          .ok());
  ASSERT_TRUE(
      e.RunAction(StrategyKind::kBatchedEarly, ActionKind::kMultiLevelExpand)
          .ok());
  obs::Tracer::Global().Enable(false);
  e.connection().DetachFromAdmissionQueue();

  ASSERT_GT(e.server().statement_log_size(), 0u);
  ASSERT_FALSE(e.server().slow_query_log().TopK().empty());
  ASSERT_FALSE(e.server().admission_queue().wave_log().empty());
  ASSERT_GT(e.server().plan_cache_stats().hits, 0u);
  ASSERT_FALSE(obs::Tracer::Global().Snapshot().empty());

  e.server().ResetObservability();

  EXPECT_EQ(e.server().statement_log_size(), 0u);
  EXPECT_EQ(e.server().statement_log_dropped(), 0u);
  EXPECT_TRUE(e.server().slow_query_log().TopK().empty());
  EXPECT_TRUE(e.server().slow_query_log().OverThreshold().empty());
  EXPECT_TRUE(e.server().admission_queue().wave_log().empty());
  EXPECT_EQ(e.server().plan_cache_stats().hits, 0u);
  EXPECT_EQ(e.server().plan_cache_stats().misses, 0u);
  EXPECT_TRUE(obs::Tracer::Global().Snapshot().empty());

  // Every registry instrument — including the labeled families and
  // gauges the original ResetAll audit was about — reads zero. The
  // instruments themselves survive (registry instruments are never
  // evicted); only their values reset.
  obs::MetricsSnapshot snapshot = obs::CaptureMetricsSnapshot("post-reset");
  for (const obs::CounterSnapshot& c : snapshot.counters) {
    EXPECT_EQ(c.value, 0u) << c.name;
  }
  for (const obs::GaugeSnapshot& g : snapshot.gauges) {
    EXPECT_EQ(g.value, 0) << g.name;
  }
  for (const obs::LabeledCounterSnapshot& c : snapshot.labeled_counters) {
    EXPECT_EQ(c.value, 0u) << c.name;
  }
  for (const obs::HistogramSnapshot& h : snapshot.histograms) {
    EXPECT_EQ(h.total_count, 0u) << h.name;
    EXPECT_DOUBLE_EQ(h.sum, 0.0) << h.name;
  }
  for (const obs::LogHistogramSnapshot& h : snapshot.log_histograms) {
    EXPECT_EQ(h.total_count, 0u) << h.name;
    EXPECT_DOUBLE_EQ(h.sum, 0.0) << h.name;
  }
  bool saw_marker = false;
  for (const obs::CounterSnapshot& c : snapshot.counters) {
    if (c.name == "reset_test.counter") saw_marker = true;
  }
  EXPECT_TRUE(saw_marker);
}

}  // namespace
}  // namespace pdm
