// Tests for the statement fingerprint (sql/fingerprint.h) and the
// server-side plan cache (engine/plan_cache.h): key normalization,
// parameter substitution, invalidation on DDL and option changes, LRU
// eviction, server-boundary reporting, and cached-vs-cold differential
// equivalence for the paper's three access strategies.

#include <gtest/gtest.h>

#include <optional>
#include <string>

#include "client/experiment.h"
#include "engine/database.h"
#include "server/db_server.h"
#include "sql/fingerprint.h"

namespace pdm {
namespace {

using sql::FingerprintSql;
using sql::StatementFingerprint;

// --- Fingerprint normalization ----------------------------------------------

TEST(FingerprintTest, LiteralOnlyDifferencesShareOneKey) {
  Result<StatementFingerprint> a =
      FingerprintSql("SELECT name FROM t WHERE id = 1 AND score > 0.5");
  Result<StatementFingerprint> b =
      FingerprintSql("SELECT name FROM t WHERE id = 42 AND score > 2.25");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(a->cacheable);
  EXPECT_TRUE(b->cacheable);
  EXPECT_EQ(a->key, b->key);
  ASSERT_EQ(a->params.size(), 2u);
  ASSERT_EQ(b->params.size(), 2u);
  EXPECT_EQ(a->params[0].int64_value(), 1);
  EXPECT_EQ(b->params[0].int64_value(), 42);
}

TEST(FingerprintTest, StringLiteralsParameterized) {
  Result<StatementFingerprint> a =
      FingerprintSql("SELECT * FROM link WHERE hier = 'part-of'");
  Result<StatementFingerprint> b =
      FingerprintSql("SELECT * FROM link WHERE hier = 'view-of'");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->key, b->key);
  ASSERT_EQ(a->params.size(), 1u);
  EXPECT_EQ(a->params[0].string_value(), "part-of");
}

TEST(FingerprintTest, StructuralLiteralsStayVerbatim) {
  // LIMIT counts and ORDER BY output-column positions change the plan
  // shape, so they are part of the key, not parameters.
  Result<StatementFingerprint> l1 = FingerprintSql("SELECT a FROM t LIMIT 1");
  Result<StatementFingerprint> l2 = FingerprintSql("SELECT a FROM t LIMIT 2");
  ASSERT_TRUE(l1.ok() && l2.ok());
  EXPECT_NE(l1->key, l2->key);
  EXPECT_TRUE(l1->params.empty());

  Result<StatementFingerprint> o1 =
      FingerprintSql("SELECT a, b FROM t ORDER BY 1");
  Result<StatementFingerprint> o2 =
      FingerprintSql("SELECT a, b FROM t ORDER BY 2");
  ASSERT_TRUE(o1.ok() && o2.ok());
  EXPECT_NE(o1->key, o2->key);
  EXPECT_TRUE(o1->params.empty());

  // Second and later ORDER BY items are positions too.
  Result<StatementFingerprint> o3 =
      FingerprintSql("SELECT a, b FROM t ORDER BY 1, 2");
  Result<StatementFingerprint> o4 =
      FingerprintSql("SELECT a, b FROM t ORDER BY 2, 1");
  ASSERT_TRUE(o3.ok() && o4.ok());
  EXPECT_NE(o3->key, o4->key);

  // But an ordinary literal inside an ORDER BY *expression* is a
  // parameter (it is not at item-start position).
  Result<StatementFingerprint> e1 =
      FingerprintSql("SELECT a FROM t ORDER BY a + 1");
  Result<StatementFingerprint> e2 =
      FingerprintSql("SELECT a FROM t ORDER BY a + 2");
  ASSERT_TRUE(e1.ok() && e2.ok());
  EXPECT_EQ(e1->key, e2->key);
  EXPECT_EQ(e1->params.size(), 1u);
}

TEST(FingerprintTest, WhereLiteralAfterOrderByStillParameterized) {
  // A subquery's WHERE literal sits inside parens opened after ORDER BY
  // started; depth tracking must not mistake it for a position.
  Result<StatementFingerprint> a = FingerprintSql(
      "SELECT a FROM t WHERE a IN (SELECT b FROM u WHERE b = 7) ORDER BY 1");
  Result<StatementFingerprint> b = FingerprintSql(
      "SELECT a FROM t WHERE a IN (SELECT b FROM u WHERE b = 9) ORDER BY 1");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->key, b->key);
  EXPECT_EQ(a->params.size(), 1u);
}

TEST(FingerprintTest, OnlySelectAndWithAreCacheable) {
  EXPECT_FALSE(FingerprintSql("INSERT INTO t VALUES (1)")->cacheable);
  EXPECT_FALSE(FingerprintSql("UPDATE t SET a = 1")->cacheable);
  EXPECT_FALSE(FingerprintSql("DELETE FROM t")->cacheable);
  EXPECT_FALSE(FingerprintSql("CREATE TABLE t (a INTEGER)")->cacheable);
  EXPECT_TRUE(FingerprintSql("SELECT 1")->cacheable);
  EXPECT_TRUE(
      FingerprintSql("WITH c AS (SELECT 1) SELECT * FROM c")->cacheable);
}

TEST(FingerprintTest, StructurallyDifferentQueriesDiffer) {
  Result<StatementFingerprint> a = FingerprintSql("SELECT a FROM t");
  Result<StatementFingerprint> b = FingerprintSql("SELECT b FROM t");
  Result<StatementFingerprint> c = FingerprintSql("SELECT a FROM u");
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_NE(a->key, b->key);
  EXPECT_NE(a->key, c->key);
}

// --- Cache behaviour through the engine -------------------------------------

class PlanCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.ExecuteScript(R"sql(
      CREATE TABLE t (id INTEGER, name VARCHAR, score DOUBLE);
      INSERT INTO t VALUES (1, 'a', 1.0), (2, 'b', 2.0), (3, 'c', 3.0);
    )sql")
                    .ok());
  }

  Database db_;
};

TEST_F(PlanCacheTest, RepeatedQueryHitsWithDifferentLiterals) {
  Result<ResultSet> r1 = db_.Query("SELECT name FROM t WHERE id = 1");
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(db_.last_stats().plan_cache_misses, 1u);
  EXPECT_EQ(db_.last_stats().plan_cache_hits, 0u);
  ASSERT_EQ(r1->num_rows(), 1u);
  EXPECT_EQ(r1->At(0, 0).string_value(), "a");

  // Different literal, same shape: served from the cached plan.
  Result<ResultSet> r2 = db_.Query("SELECT name FROM t WHERE id = 2");
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(db_.last_stats().plan_cache_hits, 1u);
  EXPECT_EQ(db_.last_stats().plan_cache_misses, 0u);
  ASSERT_EQ(r2->num_rows(), 1u);
  EXPECT_EQ(r2->At(0, 0).string_value(), "b");

  EXPECT_EQ(db_.plan_cache().stats().hits, 1u);
  EXPECT_EQ(db_.plan_cache().size(), 1u);
}

TEST_F(PlanCacheTest, InListSubstitutionRebuildsLiteralSet) {
  Result<ResultSet> r1 =
      db_.Query("SELECT COUNT(*) FROM t WHERE id IN (1, 2)");
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1->At(0, 0).int64_value(), 2);

  Result<ResultSet> r2 =
      db_.Query("SELECT COUNT(*) FROM t WHERE id IN (3, 9)");
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(db_.last_stats().plan_cache_hits, 1u);
  EXPECT_EQ(r2->At(0, 0).int64_value(), 1);
}

TEST_F(PlanCacheTest, LargeInListSubstitution) {
  // Large lists take the precomputed-hash-set path; the set must be
  // re-derived after substitution.
  ASSERT_TRUE(db_.Execute("CREATE TABLE n (v INTEGER)").ok());
  std::string insert = "INSERT INTO n VALUES (0)";
  for (int i = 1; i < 400; ++i) insert += ", (" + std::to_string(i) + ")";
  ASSERT_TRUE(db_.Execute(insert).ok());

  auto in_query = [](int offset) {
    std::string sql = "SELECT COUNT(*) FROM n WHERE v IN (";
    for (int i = 0; i < 300; ++i) {
      if (i > 0) sql += ",";
      sql += std::to_string(offset + i * 2);
    }
    return sql + ")";
  };
  Result<ResultSet> evens = db_.Query(in_query(0));
  ASSERT_TRUE(evens.ok());
  EXPECT_EQ(evens->At(0, 0).int64_value(), 200);  // 0,2,..,398 within 0..399

  Result<ResultSet> odds = db_.Query(in_query(1));
  ASSERT_TRUE(odds.ok());
  EXPECT_EQ(db_.last_stats().plan_cache_hits, 1u);
  EXPECT_EQ(odds->At(0, 0).int64_value(), 200);  // 1,3,..,399
}

TEST_F(PlanCacheTest, CreateAndDropTableFlushEntries) {
  ASSERT_TRUE(db_.Query("SELECT name FROM t WHERE id = 1").ok());
  ASSERT_TRUE(db_.Query("SELECT name FROM t WHERE id = 2").ok());
  EXPECT_EQ(db_.last_stats().plan_cache_hits, 1u);

  // CREATE TABLE bumps the schema epoch: the cached plan is discarded.
  ASSERT_TRUE(db_.Execute("CREATE TABLE other (x INTEGER)").ok());
  ASSERT_TRUE(db_.Query("SELECT name FROM t WHERE id = 3").ok());
  EXPECT_EQ(db_.last_stats().plan_cache_hits, 0u);
  EXPECT_EQ(db_.last_stats().plan_cache_misses, 1u);
  EXPECT_GE(db_.plan_cache().stats().invalidations, 1u);

  // So does DROP TABLE.
  ASSERT_TRUE(db_.Execute("DROP TABLE other").ok());
  ASSERT_TRUE(db_.Query("SELECT name FROM t WHERE id = 1").ok());
  EXPECT_EQ(db_.last_stats().plan_cache_misses, 1u);
  EXPECT_GE(db_.plan_cache().stats().invalidations, 2u);
}

TEST_F(PlanCacheTest, ViewDdlInvalidates) {
  ASSERT_TRUE(db_.Query("SELECT name FROM t WHERE id = 1").ok());
  ASSERT_TRUE(
      db_.Execute("CREATE VIEW v AS SELECT id, name FROM t WHERE id > 1")
          .ok());
  ASSERT_TRUE(db_.Query("SELECT name FROM t WHERE id = 2").ok());
  EXPECT_EQ(db_.last_stats().plan_cache_misses, 1u);

  // A cached query over the view is correct and hit on repetition.
  Result<ResultSet> v1 = db_.Query("SELECT name FROM v WHERE id = 2");
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(v1->At(0, 0).string_value(), "b");
  Result<ResultSet> v2 = db_.Query("SELECT name FROM v WHERE id = 3");
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(db_.last_stats().plan_cache_hits, 1u);
  EXPECT_EQ(v2->At(0, 0).string_value(), "c");

  ASSERT_TRUE(db_.Execute("DROP VIEW v").ok());
  ASSERT_TRUE(db_.Query("SELECT name FROM t WHERE id = 1").ok());
  EXPECT_EQ(db_.last_stats().plan_cache_misses, 1u);
}

TEST_F(PlanCacheTest, DmlDoesNotInvalidateButSeesNewData) {
  // DML leaves plans valid — they re-scan current table contents.
  ASSERT_TRUE(db_.Query("SELECT COUNT(*) FROM t WHERE id = 4").ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO t VALUES (4, 'd', 4.0)").ok());
  Result<ResultSet> after = db_.Query("SELECT COUNT(*) FROM t WHERE id = 4");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(db_.last_stats().plan_cache_hits, 1u);
  EXPECT_EQ(after->At(0, 0).int64_value(), 1);
}

TEST_F(PlanCacheTest, BinderOptionChangeInvalidates) {
  ASSERT_TRUE(
      db_.Query("SELECT COUNT(*) FROM t AS x JOIN t AS y ON x.id = y.id "
                "WHERE x.id > 0")
          .ok());
  db_.options().binder.use_hash_join = false;
  Result<ResultSet> rs =
      db_.Query("SELECT COUNT(*) FROM t AS x JOIN t AS y ON x.id = y.id "
                "WHERE x.id > 1");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(db_.last_stats().plan_cache_misses, 1u);
  EXPECT_EQ(rs->At(0, 0).int64_value(), 2);
}

TEST_F(PlanCacheTest, LruEvictionAtCapacity) {
  db_.plan_cache().set_capacity(1);
  ASSERT_TRUE(db_.Query("SELECT id FROM t WHERE id = 1").ok());
  ASSERT_TRUE(db_.Query("SELECT name FROM t WHERE id = 1").ok());  // evicts
  EXPECT_EQ(db_.plan_cache().stats().evictions, 1u);
  EXPECT_EQ(db_.plan_cache().size(), 1u);
  // The first shape was evicted: running it again is a miss, not a hit.
  ASSERT_TRUE(db_.Query("SELECT id FROM t WHERE id = 2").ok());
  EXPECT_EQ(db_.last_stats().plan_cache_misses, 1u);
}

TEST_F(PlanCacheTest, DisabledCacheNeverHits) {
  db_.options().use_plan_cache = false;
  ASSERT_TRUE(db_.Query("SELECT name FROM t WHERE id = 1").ok());
  Result<ResultSet> rs = db_.Query("SELECT name FROM t WHERE id = 2");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(db_.last_stats().plan_cache_hits, 0u);
  EXPECT_EQ(db_.last_stats().plan_cache_misses, 0u);
  EXPECT_EQ(db_.plan_cache().size(), 0u);
  EXPECT_EQ(rs->At(0, 0).string_value(), "b");
}

TEST_F(PlanCacheTest, CachedAndColdResultsIdenticalOnCorpus) {
  const char* kCorpus[] = {
      "SELECT name FROM t WHERE id = 2",
      "SELECT COUNT(*), MIN(score) FROM t WHERE score > 1.5",
      "SELECT id, name FROM t WHERE id IN (1, 3) ORDER BY 1",
      "SELECT name FROM t WHERE name LIKE 'b%'",
      "SELECT id FROM t WHERE score BETWEEN 1.5 AND 2.5",
      "SELECT a.name FROM t AS a JOIN t AS b ON a.id = b.id "
      "WHERE b.score > 2.0 ORDER BY 1",
      "WITH big AS (SELECT * FROM t WHERE score > 1.0) "
      "SELECT COUNT(*) FROM big WHERE id < 3",
  };
  // Cold: no cache at all.
  db_.options().use_plan_cache = false;
  std::vector<std::string> cold;
  for (const char* sql : kCorpus) {
    Result<ResultSet> rs = db_.Query(sql);
    ASSERT_TRUE(rs.ok()) << sql;
    cold.push_back(rs->ToString(10000));
  }
  // Warm: first pass populates, second pass must hit and agree.
  db_.options().use_plan_cache = true;
  for (int round = 0; round < 2; ++round) {
    for (size_t i = 0; i < std::size(kCorpus); ++i) {
      Result<ResultSet> rs = db_.Query(kCorpus[i]);
      ASSERT_TRUE(rs.ok()) << kCorpus[i];
      EXPECT_EQ(rs->ToString(10000), cold[i]) << kCorpus[i];
      if (round == 1) {
        EXPECT_EQ(db_.last_stats().plan_cache_hits, 1u) << kCorpus[i];
      }
    }
  }
}

// --- Server boundary --------------------------------------------------------

TEST(PlanCacheServerTest, StatementLogRecordsHits) {
  DbServer server;
  ASSERT_TRUE(server.database()
                  .ExecuteScript(R"sql(
      CREATE TABLE t (id INTEGER, name VARCHAR);
      INSERT INTO t VALUES (1, 'a'), (2, 'b');
    )sql")
                  .ok());
  server.EnableStatementLog(true);
  ASSERT_TRUE(server.Execute("SELECT name FROM t WHERE id = 1", nullptr,
                             nullptr)
                  .ok());
  ASSERT_TRUE(server.Execute("SELECT name FROM t WHERE id = 2", nullptr,
                             nullptr)
                  .ok());
  ASSERT_EQ(server.statement_log().size(), 2u);
  EXPECT_FALSE(server.statement_log()[0].plan_cache_hit);
  EXPECT_TRUE(server.statement_log()[1].plan_cache_hit);
  EXPECT_GE(server.plan_cache_stats().hits, 1u);
  EXPECT_GE(server.plan_cache_stats().misses, 1u);
}

// --- Differential: three strategies, cached vs cold -------------------------

using model::ActionKind;
using model::StrategyKind;

client::ExperimentConfig SeedConfig() {
  client::ExperimentConfig config;
  config.generator.depth = 3;
  config.generator.branching = 3;
  config.generator.sigma = 0.6;
  return config;
}

void ExpectSameTree(const pdmsys::ProductTree& a,
                    const pdmsys::ProductTree& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  for (const pdmsys::ProductNode& node : a.nodes()) {
    std::optional<size_t> in_b = b.FindByObid(node.obid);
    ASSERT_TRUE(in_b.has_value()) << node.obid;
    const pdmsys::ProductNode& other = b.node(*in_b);
    if (node.parent.has_value()) {
      ASSERT_TRUE(other.parent.has_value());
      EXPECT_EQ(a.node(*node.parent).obid, b.node(*other.parent).obid);
    } else {
      EXPECT_FALSE(other.parent.has_value());
    }
  }
}

class StrategySweep : public ::testing::TestWithParam<StrategyKind> {};

TEST_P(StrategySweep, CachedMatchesColdOnSeedProduct) {
  // Cold deployment: plan cache off end to end.
  Result<std::unique_ptr<client::Experiment>> cold_exp =
      client::Experiment::Create(SeedConfig());
  ASSERT_TRUE(cold_exp.ok()) << cold_exp.status();
  (*cold_exp)->server().database().options().use_plan_cache = false;

  // Warm deployment: cache on, every action run twice so the second run
  // executes fully from cached plans.
  Result<std::unique_ptr<client::Experiment>> warm_exp =
      client::Experiment::Create(SeedConfig());
  ASSERT_TRUE(warm_exp.ok()) << warm_exp.status();

  for (ActionKind action :
       {ActionKind::kSingleLevelExpand, ActionKind::kMultiLevelExpand}) {
    Result<client::ActionResult> cold =
        (*cold_exp)->RunAction(GetParam(), action);
    ASSERT_TRUE(cold.ok()) << cold.status();
    Result<client::ActionResult> first =
        (*warm_exp)->RunAction(GetParam(), action);
    ASSERT_TRUE(first.ok()) << first.status();
    Result<client::ActionResult> second =
        (*warm_exp)->RunAction(GetParam(), action);
    ASSERT_TRUE(second.ok()) << second.status();

    ExpectSameTree(cold->tree, first->tree);
    ExpectSameTree(cold->tree, second->tree);
    EXPECT_EQ(cold->visible_nodes, second->visible_nodes);
    // Byte-identical over the simulated wire as well.
    EXPECT_EQ(cold->transmitted_rows, second->transmitted_rows);
  }
  EXPECT_GT((*warm_exp)->server().plan_cache_stats().hits, 0u);
  EXPECT_EQ((*cold_exp)->server().plan_cache_stats().hits, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, StrategySweep,
                         ::testing::Values(StrategyKind::kNavigationalLate,
                                           StrategyKind::kNavigationalEarly,
                                           StrategyKind::kRecursive));

}  // namespace
}  // namespace pdm
