// Unit tests for name resolution, plan shapes, predicate pushdown and
// hash-join conversion.

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "plan/binder.h"
#include "sql/parser.h"

namespace pdm {
namespace {

class BinderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(functions_.RegisterBuiltins().ok());
    ASSERT_TRUE(catalog_
                    .CreateTable("assy",
                                 Schema({{"obid", ColumnType::kInt64},
                                         {"name", ColumnType::kString},
                                         {"dec", ColumnType::kString}}))
                    .ok());
    ASSERT_TRUE(catalog_
                    .CreateTable("link",
                                 Schema({{"left", ColumnType::kInt64},
                                         {"right", ColumnType::kInt64}}))
                    .ok());
  }

  Result<BoundSelect> Bind(std::string_view sql,
                           BinderOptions options = BinderOptions()) {
    Result<sql::StatementPtr> stmt = sql::ParseSql(sql);
    if (!stmt.ok()) return stmt.status();
    Binder binder(&catalog_, &functions_, options);
    return binder.BindSelect(static_cast<const sql::SelectStmt&>(**stmt));
  }

  BoundSelect MustBind(std::string_view sql,
                       BinderOptions options = BinderOptions()) {
    Result<BoundSelect> bound = Bind(sql, options);
    EXPECT_TRUE(bound.ok()) << sql << " -> " << bound.status();
    return bound.ok() ? std::move(bound).value() : BoundSelect{};
  }

  Catalog catalog_;
  FunctionRegistry functions_;
};

TEST_F(BinderTest, ResolvesQualifiedAndBareColumns) {
  BoundSelect bound = MustBind("SELECT assy.obid, name FROM assy");
  ASSERT_EQ(bound.root->kind, PlanKind::kProject);
  const auto& project = static_cast<const ProjectNode&>(*bound.root);
  EXPECT_EQ(project.schema.column(0).name, "obid");
  EXPECT_EQ(project.schema.column(0).type, ColumnType::kInt64);
  EXPECT_EQ(project.schema.column(1).name, "name");
}

TEST_F(BinderTest, UnknownNamesAreBindErrors) {
  EXPECT_EQ(Bind("SELECT nosuch FROM assy").status().code(),
            StatusCode::kBindError);
  EXPECT_EQ(Bind("SELECT x.obid FROM assy").status().code(),
            StatusCode::kBindError);
  EXPECT_EQ(Bind("SELECT * FROM nosuch").status().code(),
            StatusCode::kBindError);
  EXPECT_EQ(Bind("SELECT NOSUCHFN(1)").status().code(),
            StatusCode::kBindError);
}

TEST_F(BinderTest, AmbiguousColumnRejected) {
  Result<BoundSelect> bound =
      Bind("SELECT obid FROM assy AS a, assy AS b");
  ASSERT_FALSE(bound.ok());
  EXPECT_NE(bound.status().message().find("ambiguous"), std::string::npos);
}

TEST_F(BinderTest, DuplicateAliasesResolveToTheirTables) {
  BoundSelect bound =
      MustBind("SELECT a.obid, b.obid FROM assy AS a, assy AS b");
  const auto& project = static_cast<const ProjectNode&>(*bound.root);
  const auto& first = static_cast<const BoundColumnRef&>(*project.exprs[0]);
  const auto& second = static_cast<const BoundColumnRef&>(*project.exprs[1]);
  EXPECT_EQ(first.index, 0u);
  EXPECT_EQ(second.index, 3u);  // offset past a's three columns
}

TEST_F(BinderTest, PushdownMergesSingleTableConjunctsIntoScan) {
  BoundSelect bound =
      MustBind("SELECT obid FROM assy WHERE dec = '+' AND obid > 1");
  const auto& project = static_cast<const ProjectNode&>(*bound.root);
  ASSERT_EQ(project.child->kind, PlanKind::kScan);
  EXPECT_NE(static_cast<const ScanNode&>(*project.child).filter, nullptr);
}

TEST_F(BinderTest, PushdownDisabledKeepsFilterNode) {
  BinderOptions options;
  options.predicate_pushdown = false;
  BoundSelect bound =
      MustBind("SELECT obid FROM assy WHERE dec = '+'", options);
  const auto& project = static_cast<const ProjectNode&>(*bound.root);
  EXPECT_EQ(project.child->kind, PlanKind::kFilter);
}

TEST_F(BinderTest, EquiJoinBecomesHashJoin) {
  BoundSelect bound = MustBind(
      "SELECT name FROM assy JOIN link ON assy.obid = link.left");
  const auto& project = static_cast<const ProjectNode&>(*bound.root);
  ASSERT_EQ(project.child->kind, PlanKind::kHashJoin);
  const auto& join = static_cast<const HashJoinNode&>(*project.child);
  ASSERT_EQ(join.left_keys.size(), 1u);
  EXPECT_EQ(join.left_keys[0], 0u);   // assy.obid
  EXPECT_EQ(join.right_keys[0], 0u);  // link.left within link
  EXPECT_EQ(join.residual, nullptr);
}

TEST_F(BinderTest, NonEquiPredicateStaysResidualOrNlj) {
  BoundSelect bound = MustBind(
      "SELECT name FROM assy JOIN link ON assy.obid = link.left "
      "AND assy.obid < link.right");
  const auto& project = static_cast<const ProjectNode&>(*bound.root);
  ASSERT_EQ(project.child->kind, PlanKind::kHashJoin);
  EXPECT_NE(static_cast<const HashJoinNode&>(*project.child).residual,
            nullptr);

  BinderOptions options;
  options.use_hash_join = false;
  BoundSelect nlj = MustBind(
      "SELECT name FROM assy JOIN link ON assy.obid = link.left", options);
  const auto& nlj_project = static_cast<const ProjectNode&>(*nlj.root);
  EXPECT_EQ(nlj_project.child->kind, PlanKind::kNestedLoopJoin);
}

TEST_F(BinderTest, OnClauseReferencingLaterTableRejected) {
  Result<BoundSelect> bound = Bind(
      "SELECT 1 FROM assy JOIN link ON link.right = a2.obid "
      "JOIN assy AS a2 ON a2.obid = link.left");
  EXPECT_FALSE(bound.ok());
}

TEST_F(BinderTest, CorrelationDetection) {
  BoundSelect correlated = MustBind(
      "SELECT name FROM assy WHERE EXISTS "
      "(SELECT * FROM link WHERE link.left = assy.obid)");
  // Find the subquery in the scan filter / filter predicate.
  const auto& project = static_cast<const ProjectNode&>(*correlated.root);
  const BoundExpr* predicate = nullptr;
  if (project.child->kind == PlanKind::kScan) {
    predicate = static_cast<const ScanNode&>(*project.child).filter.get();
  } else if (project.child->kind == PlanKind::kFilter) {
    predicate =
        static_cast<const FilterNode&>(*project.child).predicate.get();
  }
  ASSERT_NE(predicate, nullptr);
  ASSERT_EQ(predicate->kind, BoundExprKind::kSubquery);
  EXPECT_TRUE(static_cast<const BoundSubquery&>(*predicate).correlated);

  BoundSelect uncorrelated = MustBind(
      "SELECT name FROM assy WHERE EXISTS (SELECT * FROM link)");
  const auto& p2 = static_cast<const ProjectNode&>(*uncorrelated.root);
  const BoundExpr* pred2 =
      p2.child->kind == PlanKind::kScan
          ? static_cast<const ScanNode&>(*p2.child).filter.get()
          : static_cast<const FilterNode&>(*p2.child).predicate.get();
  ASSERT_EQ(pred2->kind, BoundExprKind::kSubquery);
  EXPECT_FALSE(static_cast<const BoundSubquery&>(*pred2).correlated);
}

TEST_F(BinderTest, CteShadowsBaseTable) {
  BoundSelect bound =
      MustBind("WITH assy AS (SELECT 1 AS one) SELECT one FROM assy");
  ASSERT_EQ(bound.ctes.size(), 1u);
  const auto& project = static_cast<const ProjectNode&>(*bound.root);
  EXPECT_EQ(project.child->kind, PlanKind::kCteScan);
}

TEST_F(BinderTest, RecursiveCteRequiresRecursiveKeyword) {
  Result<BoundSelect> bound = Bind(
      "WITH r (x) AS (SELECT 1 UNION SELECT x FROM r) SELECT * FROM r");
  ASSERT_FALSE(bound.ok());
  EXPECT_NE(bound.status().message().find("RECURSIVE"), std::string::npos);
}

TEST_F(BinderTest, RecursiveCtePartsClassified) {
  BoundSelect bound = MustBind(
      "WITH RECURSIVE r (x) AS (SELECT obid FROM assy WHERE obid = 1 "
      "UNION SELECT link.right FROM r JOIN link ON r.x = link.left) "
      "SELECT x FROM r");
  ASSERT_EQ(bound.ctes.size(), 1u);
  EXPECT_TRUE(bound.ctes[0].recursive);
  EXPECT_EQ(bound.ctes[0].recursive_terms.size(), 1u);
  EXPECT_FALSE(bound.ctes[0].union_all);
  EXPECT_EQ(bound.ctes[0].schema.column(0).name, "x");
}

TEST_F(BinderTest, RecursiveCteColumnCountMismatchRejected) {
  EXPECT_FALSE(Bind("WITH RECURSIVE r (x, y) AS (SELECT 1) SELECT * FROM r")
                   .ok());
  EXPECT_FALSE(
      Bind("WITH RECURSIVE r (x) AS (SELECT 1 UNION SELECT x, x FROM r) "
           "SELECT * FROM r")
          .ok());
}

TEST_F(BinderTest, RecursiveSelfReferenceInSubqueryRejected) {
  Result<BoundSelect> bound = Bind(
      "WITH RECURSIVE r (x) AS (SELECT 1 UNION SELECT obid FROM assy "
      "WHERE obid IN (SELECT x FROM r)) SELECT * FROM r");
  ASSERT_FALSE(bound.ok());
  EXPECT_EQ(bound.status().code(), StatusCode::kNotImplemented);
}

TEST_F(BinderTest, SeedlessRecursionRejected) {
  EXPECT_FALSE(
      Bind("WITH RECURSIVE r (x) AS (SELECT x FROM r) SELECT * FROM r")
          .ok());
}

TEST_F(BinderTest, OrderByPositionOutOfRangeRejected) {
  EXPECT_FALSE(Bind("SELECT obid FROM assy ORDER BY 2").ok());
  EXPECT_FALSE(Bind("SELECT obid FROM assy ORDER BY 0").ok());
}

TEST_F(BinderTest, AggregateInWhereRejected) {
  Result<BoundSelect> bound =
      Bind("SELECT obid FROM assy WHERE COUNT(*) > 1");
  ASSERT_FALSE(bound.ok());
  EXPECT_NE(bound.status().message().find("aggregate"), std::string::npos);
}

TEST_F(BinderTest, NestedAggregatesRejected) {
  EXPECT_FALSE(Bind("SELECT MAX(COUNT(*)) FROM assy").ok());
}

TEST_F(BinderTest, MaxOwnRowIndexAnalysis) {
  BoundSelect bound = MustBind(
      "SELECT name FROM assy WHERE EXISTS "
      "(SELECT * FROM link WHERE link.left = assy.obid)");
  const auto& project = static_cast<const ProjectNode&>(*bound.root);
  const BoundExpr* predicate =
      project.child->kind == PlanKind::kScan
          ? static_cast<const ScanNode&>(*project.child).filter.get()
          : static_cast<const FilterNode&>(*project.child).predicate.get();
  // The correlated ref assy.obid (index 0) is the only own-row reference.
  std::optional<size_t> max_index = MaxOwnRowIndex(*predicate);
  ASSERT_TRUE(max_index.has_value());
  EXPECT_EQ(*max_index, 0u);
  EXPECT_FALSE(ExprHasEscapingRefs(*predicate, 0));
}

}  // namespace
}  // namespace pdm
