// Unit tests for the SQL parser: statement shapes, precedence, rendering
// round trips, and diagnostics.

#include <gtest/gtest.h>

#include "sql/parser.h"

namespace pdm::sql {
namespace {

StatementPtr MustParse(std::string_view input) {
  Result<StatementPtr> stmt = ParseSql(input);
  EXPECT_TRUE(stmt.ok()) << input << " -> " << stmt.status();
  return stmt.ok() ? std::move(stmt).value() : nullptr;
}

ExprPtr MustParseExpr(std::string_view input) {
  Result<ExprPtr> expr = ParseSqlExpression(input);
  EXPECT_TRUE(expr.ok()) << input << " -> " << expr.status();
  return expr.ok() ? std::move(expr).value() : nullptr;
}

/// Parsing the rendered text again must yield identical rendering
/// (idempotent fixpoint).
void ExpectRenderRoundTrip(std::string_view input) {
  StatementPtr stmt = MustParse(input);
  ASSERT_NE(stmt, nullptr);
  std::string rendered = stmt->ToSql();
  Result<StatementPtr> again = ParseSql(rendered);
  ASSERT_TRUE(again.ok()) << rendered << " -> " << again.status();
  EXPECT_EQ((*again)->ToSql(), rendered);
}

TEST(Parser, MinimalSelect) {
  StatementPtr stmt = MustParse("SELECT 1");
  ASSERT_EQ(stmt->kind, StatementKind::kSelect);
  const auto& select = static_cast<const SelectStmt&>(*stmt);
  ASSERT_EQ(select.query.terms.size(), 1u);
  EXPECT_TRUE(select.query.terms[0].from.empty());
}

TEST(Parser, SelectStarFromWhere) {
  StatementPtr stmt = MustParse("SELECT * FROM assy WHERE obid = 1");
  const auto& select = static_cast<const SelectStmt&>(*stmt);
  const SelectCore& core = select.query.terms[0];
  EXPECT_TRUE(core.items[0].is_star);
  ASSERT_EQ(core.from.size(), 1u);
  EXPECT_EQ(core.from[0].ref.table_name, "assy");
  ASSERT_NE(core.where, nullptr);
}

TEST(Parser, QualifiedStar) {
  StatementPtr stmt = MustParse("SELECT a.* FROM assy AS a");
  const auto& select = static_cast<const SelectStmt&>(*stmt);
  EXPECT_TRUE(select.query.terms[0].items[0].is_star);
  EXPECT_EQ(select.query.terms[0].items[0].star_qualifier, "a");
  EXPECT_EQ(select.query.terms[0].from[0].ref.alias, "a");
}

TEST(Parser, AliasesWithAndWithoutAs) {
  StatementPtr stmt =
      MustParse("SELECT obid oid, name AS n FROM assy a");
  const auto& select = static_cast<const SelectStmt&>(*stmt);
  EXPECT_EQ(select.query.terms[0].items[0].alias, "oid");
  EXPECT_EQ(select.query.terms[0].items[1].alias, "n");
  EXPECT_EQ(select.query.terms[0].from[0].ref.alias, "a");
}

TEST(Parser, QuotedAliases) {
  StatementPtr stmt = MustParse("SELECT dec AS \"DEC\" FROM assy");
  const auto& select = static_cast<const SelectStmt&>(*stmt);
  EXPECT_EQ(select.query.terms[0].items[0].alias, "DEC");
}

TEST(Parser, JoinChains) {
  StatementPtr stmt = MustParse(
      "SELECT * FROM rtbl JOIN link ON rtbl.obid = link.left "
      "JOIN assy ON link.right = assy.obid");
  const auto& select = static_cast<const SelectStmt&>(*stmt);
  const FromItem& from = select.query.terms[0].from[0];
  EXPECT_EQ(from.ref.table_name, "rtbl");
  ASSERT_EQ(from.joins.size(), 2u);
  EXPECT_EQ(from.joins[0].ref.table_name, "link");
  EXPECT_EQ(from.joins[1].ref.table_name, "assy");
  ASSERT_NE(from.joins[1].on, nullptr);
}

TEST(Parser, InnerJoinKeywordAccepted) {
  StatementPtr stmt = MustParse(
      "SELECT * FROM a INNER JOIN b ON a.x = b.y");
  const auto& select = static_cast<const SelectStmt&>(*stmt);
  EXPECT_EQ(select.query.terms[0].from[0].joins.size(), 1u);
}

TEST(Parser, CommaJoins) {
  StatementPtr stmt = MustParse("SELECT * FROM a, b, c WHERE a.x = b.y");
  const auto& select = static_cast<const SelectStmt&>(*stmt);
  EXPECT_EQ(select.query.terms[0].from.size(), 3u);
}

TEST(Parser, DerivedTableRequiresAlias) {
  EXPECT_TRUE(ParseSql("SELECT * FROM (SELECT 1) AS t").ok());
  EXPECT_FALSE(ParseSql("SELECT * FROM (SELECT 1)").ok());
}

TEST(Parser, UnionChainsWithMixedAll) {
  StatementPtr stmt = MustParse(
      "SELECT 1 UNION SELECT 2 UNION ALL SELECT 3");
  const auto& select = static_cast<const SelectStmt&>(*stmt);
  ASSERT_EQ(select.query.terms.size(), 3u);
  ASSERT_EQ(select.query.union_all.size(), 2u);
  EXPECT_FALSE(select.query.union_all[0]);
  EXPECT_TRUE(select.query.union_all[1]);
}

TEST(Parser, OrderByPositionsAndNamesAndLimit) {
  StatementPtr stmt = MustParse(
      "SELECT type, obid FROM assy ORDER BY 1, obid DESC LIMIT 10");
  const auto& select = static_cast<const SelectStmt&>(*stmt);
  ASSERT_EQ(select.query.order_by.size(), 2u);
  EXPECT_EQ(select.query.order_by[0].position, 1);
  EXPECT_FALSE(select.query.order_by[0].descending);
  EXPECT_TRUE(select.query.order_by[1].descending);
  EXPECT_EQ(select.query.limit, 10);
}

TEST(Parser, GroupByHaving) {
  StatementPtr stmt = MustParse(
      "SELECT material, COUNT(*) FROM comp GROUP BY material "
      "HAVING COUNT(*) > 3");
  const auto& select = static_cast<const SelectStmt&>(*stmt);
  EXPECT_EQ(select.query.terms[0].group_by.size(), 1u);
  ASSERT_NE(select.query.terms[0].having, nullptr);
}

TEST(Parser, WithRecursiveClause) {
  StatementPtr stmt = MustParse(
      "WITH RECURSIVE rtbl (a, b) AS (SELECT 1, 2 UNION "
      "SELECT a, b FROM rtbl) SELECT * FROM rtbl");
  const auto& select = static_cast<const SelectStmt&>(*stmt);
  EXPECT_TRUE(select.recursive);
  ASSERT_EQ(select.ctes.size(), 1u);
  EXPECT_EQ(select.ctes[0].name, "rtbl");
  EXPECT_EQ(select.ctes[0].column_names.size(), 2u);
  EXPECT_EQ(select.ctes[0].query->terms.size(), 2u);
}

TEST(Parser, MultipleCtes) {
  StatementPtr stmt = MustParse(
      "WITH a AS (SELECT 1), b AS (SELECT 2) SELECT * FROM a, b");
  const auto& select = static_cast<const SelectStmt&>(*stmt);
  EXPECT_FALSE(select.recursive);
  EXPECT_EQ(select.ctes.size(), 2u);
}

TEST(Parser, PrecedenceOrOverAnd) {
  ExprPtr expr = MustParseExpr("a = 1 OR b = 2 AND c = 3");
  // Must parse as a=1 OR (b=2 AND c=3).
  ASSERT_EQ(expr->kind, ExprKind::kBinary);
  EXPECT_EQ(static_cast<const BinaryExpr&>(*expr).op, BinaryOp::kOr);
}

TEST(Parser, PrecedenceArithmetic) {
  ExprPtr expr = MustParseExpr("1 + 2 * 3");
  const auto& add = static_cast<const BinaryExpr&>(*expr);
  EXPECT_EQ(add.op, BinaryOp::kAdd);
  EXPECT_EQ(static_cast<const BinaryExpr&>(*add.rhs).op, BinaryOp::kMul);
}

TEST(Parser, NotBindsTighterThanAnd) {
  ExprPtr expr = MustParseExpr("NOT a = 1 AND b = 2");
  EXPECT_EQ(static_cast<const BinaryExpr&>(*expr).op, BinaryOp::kAnd);
}

TEST(Parser, InListAndSubqueryForms) {
  ExprPtr list = MustParseExpr("x IN (1, 2, 3)");
  EXPECT_EQ(list->kind, ExprKind::kInList);
  ExprPtr sub = MustParseExpr("x IN (SELECT obid FROM rtbl)");
  EXPECT_EQ(sub->kind, ExprKind::kInSubquery);
  ExprPtr negated = MustParseExpr("x NOT IN (1)");
  EXPECT_TRUE(static_cast<const InListExpr&>(*negated).negated);
}

TEST(Parser, ExistsForms) {
  ExprPtr expr = MustParseExpr("EXISTS (SELECT * FROM t)");
  EXPECT_EQ(expr->kind, ExprKind::kExists);
  ExprPtr negated = MustParseExpr("NOT EXISTS (SELECT * FROM t)");
  EXPECT_EQ(negated->kind, ExprKind::kExists);
  EXPECT_TRUE(static_cast<const ExistsExpr&>(*negated).negated);
}

TEST(Parser, BetweenLikeIsNull) {
  EXPECT_EQ(MustParseExpr("x BETWEEN 1 AND 5")->kind, ExprKind::kBetween);
  EXPECT_EQ(MustParseExpr("x NOT BETWEEN 1 AND 5")->kind, ExprKind::kBetween);
  EXPECT_EQ(MustParseExpr("name LIKE 'Assy%'")->kind, ExprKind::kLike);
  EXPECT_EQ(MustParseExpr("x IS NULL")->kind, ExprKind::kIsNull);
  ExprPtr not_null = MustParseExpr("x IS NOT NULL");
  EXPECT_TRUE(static_cast<const IsNullExpr&>(*not_null).negated);
}

TEST(Parser, CastWithOptionalLength) {
  ExprPtr expr = MustParseExpr("CAST(NULL AS integer)");
  EXPECT_EQ(expr->kind, ExprKind::kCast);
  EXPECT_EQ(static_cast<const CastExpr&>(*expr).target_type,
            ColumnType::kInt64);
  EXPECT_EQ(MustParseExpr("CAST(x AS VARCHAR(20))")->kind, ExprKind::kCast);
}

TEST(Parser, CaseExpression) {
  ExprPtr expr = MustParseExpr(
      "CASE WHEN x = 1 THEN 'one' WHEN x = 2 THEN 'two' ELSE 'many' END");
  const auto& kase = static_cast<const CaseExpr&>(*expr);
  EXPECT_EQ(kase.whens.size(), 2u);
  ASSERT_NE(kase.else_expr, nullptr);
}

TEST(Parser, FunctionCallsIncludingCountStar) {
  ExprPtr count = MustParseExpr("COUNT(*)");
  const auto& call = static_cast<const FunctionCallExpr&>(*count);
  EXPECT_EQ(call.name, "COUNT");
  ASSERT_EQ(call.args.size(), 1u);
  EXPECT_EQ(call.args[0]->kind, ExprKind::kStar);
  ExprPtr distinct = MustParseExpr("COUNT(DISTINCT material)");
  EXPECT_TRUE(static_cast<const FunctionCallExpr&>(*distinct).distinct);
}

TEST(Parser, ScalarSubqueryComparison) {
  ExprPtr expr =
      MustParseExpr("(SELECT COUNT(*) FROM rtbl WHERE type = 'assy') <= 10");
  const auto& cmp = static_cast<const BinaryExpr&>(*expr);
  EXPECT_EQ(cmp.op, BinaryOp::kLessEq);
  EXPECT_EQ(cmp.lhs->kind, ExprKind::kScalarSubquery);
}

TEST(Parser, DmlStatements) {
  EXPECT_EQ(MustParse("CREATE TABLE t (a INTEGER, b VARCHAR(10))")->kind,
            StatementKind::kCreateTable);
  EXPECT_EQ(MustParse("CREATE TABLE IF NOT EXISTS t (a INTEGER)")->kind,
            StatementKind::kCreateTable);
  EXPECT_EQ(MustParse("DROP TABLE IF EXISTS t")->kind,
            StatementKind::kDropTable);
  EXPECT_EQ(MustParse("INSERT INTO t (a) VALUES (1), (2)")->kind,
            StatementKind::kInsert);
  EXPECT_EQ(MustParse("UPDATE t SET a = 1, b = 'x' WHERE a > 0")->kind,
            StatementKind::kUpdate);
  EXPECT_EQ(MustParse("DELETE FROM t WHERE a = 1")->kind,
            StatementKind::kDelete);
  EXPECT_EQ(MustParse("CALL proc(1, 'x')")->kind, StatementKind::kCall);
}

TEST(Parser, ScriptSplitsOnSemicolons) {
  Result<std::vector<StatementPtr>> script = ParseSqlScript(
      "CREATE TABLE t (a INTEGER); INSERT INTO t VALUES (1);;"
      "SELECT * FROM t");
  ASSERT_TRUE(script.ok()) << script.status();
  EXPECT_EQ(script->size(), 3u);
}

TEST(Parser, RenderRoundTrips) {
  ExpectRenderRoundTrip("SELECT 1");
  ExpectRenderRoundTrip(
      "SELECT a.obid, COUNT(*) FROM assy AS a JOIN link ON a.obid = "
      "link.left WHERE a.dec = '+' GROUP BY a.obid HAVING COUNT(*) > 1 "
      "ORDER BY 2 DESC LIMIT 5");
  ExpectRenderRoundTrip(
      "WITH RECURSIVE rtbl (type, obid) AS (SELECT type, obid FROM assy "
      "WHERE obid = 1 UNION SELECT assy.type, assy.obid FROM rtbl JOIN "
      "link ON rtbl.obid = link.left JOIN assy ON link.right = assy.obid) "
      "SELECT type, obid, CAST(NULL AS INTEGER) AS \"LEFT\" FROM rtbl "
      "UNION SELECT type, obid, left FROM link WHERE left IN (SELECT obid "
      "FROM rtbl) ORDER BY 1, 2");
  ExpectRenderRoundTrip(
      "SELECT CASE WHEN x BETWEEN 1 AND 2 THEN 'a' ELSE 'b' END FROM t "
      "WHERE NOT EXISTS (SELECT * FROM u WHERE u.id = t.id) AND name "
      "LIKE '%x%'");
  ExpectRenderRoundTrip("UPDATE t SET a = a + 1 WHERE b IN (1, 2, 3)");
}

TEST(Parser, Diagnostics) {
  // Errors carry positions and a description of what was found.
  Result<StatementPtr> bad = ParseSql("SELECT FROM t");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kParseError);
  EXPECT_NE(bad.status().message().find("line 1"), std::string::npos);

  EXPECT_FALSE(ParseSql("SELECT 1 2").ok());           // trailing junk
  EXPECT_FALSE(ParseSql("SELECT * FROM").ok());        // missing table
  EXPECT_FALSE(ParseSql("SELECT * FROM t WHERE").ok());
  EXPECT_FALSE(ParseSql("INSERT INTO t VALUES").ok());
  EXPECT_FALSE(ParseSql("SELECT CASE END").ok());      // no WHEN
  EXPECT_FALSE(ParseSql("WITH x AS SELECT 1 SELECT 2").ok());
  EXPECT_FALSE(ParseSqlExpression("1 +").ok());
  EXPECT_FALSE(ParseSqlExpression("CAST(1 AS nosuchtype)").ok());
}

TEST(Parser, CloneProducesIdenticalSql) {
  StatementPtr stmt = MustParse(
      "WITH RECURSIVE r (x) AS (SELECT 1 UNION SELECT x FROM r) "
      "SELECT x FROM r WHERE x IN (SELECT x FROM r) ORDER BY 1");
  const auto& select = static_cast<const SelectStmt&>(*stmt);
  std::unique_ptr<SelectStmt> clone = select.CloneSelect();
  EXPECT_EQ(clone->ToSql(), select.ToSql());
}

}  // namespace
}  // namespace pdm::sql
