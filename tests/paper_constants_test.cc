// Guards the transcription of the paper's printed numbers in the bench
// harness: every transcribed total must match our closed-form model to
// printing precision, so a typo in either would be caught.

#include <gtest/gtest.h>

#include "bench_util.h"

namespace pdm::bench {
namespace {

using model::ActionKind;
using model::StrategyKind;

constexpr ActionKind kActions[] = {ActionKind::kQuery,
                                   ActionKind::kSingleLevelExpand,
                                   ActionKind::kMultiLevelExpand};

TEST(PaperConstants, Table2MatchesModelEverywhere) {
  std::vector<model::NetworkParams> nets = model::PaperNetworkScenarios();
  std::vector<model::TreeParams> trees = model::PaperTreeScenarios();
  for (size_t n = 0; n < nets.size(); ++n) {
    for (size_t t = 0; t < trees.size(); ++t) {
      for (size_t a = 0; a < 3; ++a) {
        double paper = PaperTable2Totals()[n][t][a];
        model::ResponseTime predicted =
            model::Predict(StrategyKind::kNavigationalLate, kActions[a],
                           trees[t], nets[n]);
        EXPECT_NEAR(predicted.total(), paper, 0.011)
            << "net " << n << " tree " << t << " action " << a;
      }
    }
  }
}

TEST(PaperConstants, Table3MatchesModelEverywhere) {
  std::vector<model::NetworkParams> nets = model::PaperNetworkScenarios();
  std::vector<model::TreeParams> trees = model::PaperTreeScenarios();
  for (size_t n = 0; n < nets.size(); ++n) {
    for (size_t t = 0; t < trees.size(); ++t) {
      for (size_t a = 0; a < 3; ++a) {
        double paper = PaperTable3Totals()[n][t][a];
        model::ResponseTime predicted =
            model::Predict(StrategyKind::kNavigationalEarly, kActions[a],
                           trees[t], nets[n]);
        EXPECT_NEAR(predicted.total(), paper, 0.011)
            << "net " << n << " tree " << t << " action " << a;
      }
    }
  }
}

TEST(PaperConstants, Table4MatchesModelEverywhere) {
  std::vector<model::NetworkParams> nets = model::PaperNetworkScenarios();
  std::vector<model::TreeParams> trees = model::PaperTreeScenarios();
  for (size_t n = 0; n < nets.size(); ++n) {
    for (size_t t = 0; t < trees.size(); ++t) {
      double paper = PaperTable4MleTotals()[n][t];
      model::ResponseTime predicted =
          model::Predict(StrategyKind::kRecursive,
                         ActionKind::kMultiLevelExpand, trees[t], nets[n]);
      EXPECT_NEAR(predicted.total(), paper, 0.011)
          << "net " << n << " tree " << t;
    }
  }
}

TEST(PaperConstants, Table3And4AgreeWhereTheyOverlap) {
  // The paper's Table 4 MLE totals equal Table 3's Query totals: with
  // early evaluation the recursive MLE ships exactly the visible node
  // set in one round trip, as a flat query does.
  for (size_t n = 0; n < 3; ++n) {
    for (size_t t = 0; t < 3; ++t) {
      EXPECT_NEAR(PaperTable4MleTotals()[n][t], PaperTable3Totals()[n][t][0],
                  0.011);
    }
  }
}

}  // namespace
}  // namespace pdm::bench
