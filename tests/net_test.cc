// Tests for the WAN model: packet accounting, statistics accumulation,
// and consistency with the paper's formulas.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "net/wan_model.h"

namespace pdm::net {
namespace {

WanConfig PaperWan() {
  return WanConfig{0.15, 256, 4096, Accounting::kPaperModel};
}

TEST(WanModel, TransferSecondsUsesPaperUnits) {
  // 1 kbit = 1024 bit: 262144 bits / (256 * 1024 bit/s) = 1 s.
  WanConfig config = PaperWan();
  EXPECT_DOUBLE_EQ(config.TransferSeconds(32768), 1.0);
}

TEST(WanModel, PaperAccountingPerRoundTrip) {
  WanLink link(PaperWan());
  double seconds = link.RecordRoundTrip(/*request=*/100, /*response=*/512);
  // Charged: 1 packet (4096) + 512 + half packet (2048) = 6656 bytes.
  double expected_transfer = 6656.0 * 8 / (256 * 1024);
  EXPECT_DOUBLE_EQ(seconds, 2 * 0.15 + expected_transfer);
  EXPECT_EQ(link.stats().round_trips, 1u);
  EXPECT_EQ(link.stats().messages, 2u);
  EXPECT_EQ(link.stats().request_packets, 1u);
  EXPECT_DOUBLE_EQ(link.stats().charged_bytes, 6656.0);
}

TEST(WanModel, LargeRequestsUseMultiplePackets) {
  WanLink link(PaperWan());
  link.RecordRoundTrip(/*request=*/9000, /*response=*/0);  // 3 packets
  EXPECT_EQ(link.stats().request_packets, 3u);
  EXPECT_DOUBLE_EQ(link.stats().charged_bytes, 3 * 4096.0 + 2048.0);
}

TEST(WanModel, ZeroByteRequestStillCostsOnePacket) {
  WanLink link(PaperWan());
  link.RecordRoundTrip(0, 0);
  EXPECT_EQ(link.stats().request_packets, 1u);
}

TEST(WanModel, ExactPacketizationRoundsBothSides) {
  WanConfig config = PaperWan();
  config.accounting = Accounting::kExactPackets;
  WanLink link(config);
  link.RecordRoundTrip(/*request=*/1, /*response=*/4097);
  EXPECT_EQ(link.stats().request_packets, 1u);
  EXPECT_EQ(link.stats().response_packets, 2u);
  EXPECT_DOUBLE_EQ(link.stats().charged_bytes, 3 * 4096.0);
}

TEST(WanModel, BatchRoundTripChargesOneExchange) {
  // A 20-statement batch: the concatenated request pads to whole packets
  // ONCE and only one half-filled final response packet is charged —
  // versus 20 request packets + 20 half packets if sent separately.
  WanLink link(PaperWan());
  double seconds =
      link.RecordBatchRoundTrip(/*request=*/20 * 100, /*response=*/20 * 512,
                                /*n_statements=*/20);
  // ceil(2000/4096)=1 packet + 10240 payload + 2048 half packet.
  EXPECT_DOUBLE_EQ(link.stats().charged_bytes, 4096.0 + 10240.0 + 2048.0);
  EXPECT_EQ(link.stats().round_trips, 1u);
  EXPECT_EQ(link.stats().statements, 20u);
  EXPECT_EQ(link.stats().messages, 2u);
  EXPECT_EQ(link.stats().request_packets, 1u);
  EXPECT_DOUBLE_EQ(seconds,
                   2 * 0.15 + (4096.0 + 10240.0 + 2048.0) * 8 / (256 * 1024));

  WanLink unbatched(PaperWan());
  for (int i = 0; i < 20; ++i) unbatched.RecordRoundTrip(100, 512);
  EXPECT_EQ(unbatched.stats().statements, 20u);
  EXPECT_GT(unbatched.stats().charged_bytes, link.stats().charged_bytes);
  EXPECT_GT(unbatched.stats().total_seconds(), seconds);
}

TEST(WanModel, EmptyBatchIsNotAnExchange) {
  // Zero statements = nothing to ship: no round trip, no packet
  // padding, no half-packet response tail, zero seconds.
  WanLink link(PaperWan());
  double seconds = link.RecordBatchRoundTrip(/*request=*/0, /*response=*/0,
                                             /*n_statements=*/0);
  EXPECT_DOUBLE_EQ(seconds, 0.0);
  EXPECT_EQ(link.stats().round_trips, 0u);
  EXPECT_EQ(link.stats().statements, 0u);
  EXPECT_EQ(link.stats().messages, 0u);
  EXPECT_EQ(link.stats().request_packets, 0u);
  EXPECT_DOUBLE_EQ(link.stats().charged_bytes, 0.0);
  EXPECT_DOUBLE_EQ(link.stats().total_seconds(), 0.0);
}

TEST(WanModel, BatchRequestSpansMultiplePackets) {
  WanLink link(PaperWan());
  link.RecordBatchRoundTrip(/*request=*/10000, /*response=*/0,
                            /*n_statements=*/50);
  EXPECT_EQ(link.stats().request_packets, 3u);
  EXPECT_DOUBLE_EQ(link.stats().charged_bytes, 3 * 4096.0 + 2048.0);
}

TEST(WanModel, BatchExactPacketizationRoundsBothSides) {
  WanConfig config = PaperWan();
  config.accounting = Accounting::kExactPackets;
  WanLink link(config);
  link.RecordBatchRoundTrip(/*request=*/4097, /*response=*/8193,
                            /*n_statements=*/7);
  EXPECT_EQ(link.stats().request_packets, 2u);
  EXPECT_EQ(link.stats().response_packets, 3u);
  EXPECT_DOUBLE_EQ(link.stats().charged_bytes, 5 * 4096.0);
  EXPECT_EQ(link.stats().statements, 7u);
}

TEST(WanModel, SingleRoundTripCountsOneStatement) {
  WanLink link(PaperWan());
  link.RecordRoundTrip(100, 512);
  link.RecordRoundTrip(100, 512);
  EXPECT_EQ(link.stats().statements, 2u);
  std::string text = link.stats().ToString();
  EXPECT_NE(text.find("statements=2"), std::string::npos);
}

TEST(WanModel, StatisticsAccumulateAndReset) {
  WanLink link(PaperWan());
  for (int i = 0; i < 10; ++i) link.RecordRoundTrip(100, 512);
  EXPECT_EQ(link.stats().round_trips, 10u);
  EXPECT_DOUBLE_EQ(link.stats().latency_seconds, 10 * 2 * 0.15);
  EXPECT_DOUBLE_EQ(link.stats().request_payload_bytes, 1000.0);
  EXPECT_DOUBLE_EQ(link.stats().response_payload_bytes, 5120.0);

  link.ResetStats();
  EXPECT_EQ(link.stats().round_trips, 0u);
  EXPECT_DOUBLE_EQ(link.stats().total_seconds(), 0.0);
}

TEST(WanModel, StatsAddCombines) {
  WanLink a(PaperWan());
  WanLink b(PaperWan());
  a.RecordRoundTrip(10, 20);
  b.RecordRoundTrip(30, 40);
  WanStats combined = a.stats();
  combined.Add(b.stats());
  EXPECT_EQ(combined.round_trips, 2u);
  EXPECT_DOUBLE_EQ(combined.request_payload_bytes, 40.0);
  EXPECT_DOUBLE_EQ(combined.latency_seconds, 4 * 0.15);
}

TEST(WanModel, LatencyDominatesManySmallQueries) {
  // The paper's core observation in miniature: n queries of tiny payload
  // cost n round trips of latency; one query with the same total payload
  // costs two messages.
  WanLink many(PaperWan());
  for (int i = 0; i < 100; ++i) many.RecordRoundTrip(100, 512);
  WanLink one(PaperWan());
  one.RecordRoundTrip(100, 51200);
  EXPECT_GT(many.stats().total_seconds(), one.stats().total_seconds());
  EXPECT_NEAR(many.stats().latency_seconds, 30.0, 1e-9);
  EXPECT_NEAR(one.stats().latency_seconds, 0.3, 1e-12);
}

TEST(WanModel, ToStringMentionsKeyFigures) {
  WanLink link(PaperWan());
  link.RecordRoundTrip(100, 512);
  std::string text = link.stats().ToString();
  EXPECT_NE(text.find("round_trips=1"), std::string::npos);
}

// --- Config validation (regression: a dtr_kbit=0 or packet_bytes=0 config
// --- used to yield inf/NaN seconds that poisoned every derived stat) ----

TEST(WanConfigValidate, RejectsZeroOrNonFiniteDtr) {
  WanConfig config = PaperWan();
  config.dtr_kbit = 0;
  Status status = config.Validate();
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("dtr_kbit"), std::string::npos);
  config.dtr_kbit = -5;
  EXPECT_FALSE(config.Validate().ok());
  config.dtr_kbit = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(config.Validate().ok());
}

TEST(WanConfigValidate, RejectsZeroPacketBytes) {
  WanConfig config = PaperWan();
  config.packet_bytes = 0;
  Status status = config.Validate();
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("packet_bytes"), std::string::npos);
}

TEST(WanConfigValidate, RejectsNegativeOrNanLatency) {
  WanConfig config = PaperWan();
  config.latency_s = -0.1;
  EXPECT_FALSE(config.Validate().ok());
  config.latency_s = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(config.Validate().ok());
  config.latency_s = 0;  // a LAN with free latency is legitimate
  EXPECT_TRUE(config.Validate().ok());
}

TEST(WanConfigValidate, CreateFactoryPropagatesTheError) {
  WanConfig bad = PaperWan();
  bad.dtr_kbit = 0;
  Result<WanLink> link = WanLink::Create(bad);
  EXPECT_FALSE(link.ok());
  EXPECT_TRUE(WanLink::Create(PaperWan()).ok());
}

TEST(WanConfigValidate, InvalidLinkIsInertAndNeverProducesNaN) {
  WanConfig bad = PaperWan();
  bad.dtr_kbit = 0;
  WanLink link(bad);
  EXPECT_FALSE(link.status().ok());
  EXPECT_DOUBLE_EQ(link.RecordRoundTrip(100, 512), 0.0);
  link.BeginExchange(100, 1, /*overlap_previous=*/false);
  EXPECT_FALSE(link.exchange_open());
  ExchangeTiming timing = link.CompleteExchange(512);
  EXPECT_DOUBLE_EQ(timing.seconds(), 0.0);
  EXPECT_EQ(link.stats().round_trips, 0u);
  EXPECT_TRUE(std::isfinite(link.stats().total_seconds()));
  EXPECT_DOUBLE_EQ(link.stats().total_seconds(), 0.0);
}

// --- Pipelined timeline (DESIGN.md 5g) --------------------------------

TEST(WanPipeline, SequentialBeginCompleteMatchesRecordBatchRoundTrip) {
  WanLink batched(PaperWan());
  double expected =
      batched.RecordBatchRoundTrip(/*request=*/2000, /*response=*/10240,
                                   /*n_statements=*/20);
  WanLink split(PaperWan());
  split.BeginExchange(2000, 20, /*overlap_previous=*/false);
  ExchangeTiming timing = split.CompleteExchange(10240);
  EXPECT_DOUBLE_EQ(timing.seconds(), expected);
  EXPECT_DOUBLE_EQ(timing.hidden_s, 0.0);
  EXPECT_DOUBLE_EQ(split.stats().charged_bytes, batched.stats().charged_bytes);
  EXPECT_DOUBLE_EQ(split.stats().total_seconds(),
                   batched.stats().total_seconds());
  EXPECT_EQ(split.stats().statements, 20u);
}

TEST(WanPipeline, OverlapHidesFullLatencyWhenPreviousTransferIsLonger) {
  // First exchange streams 65536 B: X_prev = (4096 + 65536 + 2048) * 8 /
  // (256 * 1024) = 2.1875 s > 2 * T_Lat = 0.3 s, so the whole latency
  // window of the overlapped exchange hides under it.
  WanLink link(PaperWan());
  link.RecordRoundTrip(100, 65536);
  link.BeginExchange(100, 1, /*overlap_previous=*/true);
  ExchangeTiming timing = link.CompleteExchange(512);
  EXPECT_DOUBLE_EQ(timing.hidden_s, 0.3);
  EXPECT_DOUBLE_EQ(link.stats().overlap_hidden_seconds, 0.3);
  // The invariant the stats expose: total = latency + transfer - hidden,
  // and that is exactly the end of the last exchange on the timeline.
  EXPECT_DOUBLE_EQ(link.stats().total_seconds(), timing.end_s);
  // Occupancy: the second transfer starts when the first one ends.
  EXPECT_DOUBLE_EQ(timing.transfer_start_s, 2 * 0.15 + 2.1875);
}

TEST(WanPipeline, OverlapHidesOnlyThePreviousTransferWhenItIsShort) {
  // First exchange streams 512 B: X_prev = 6656 * 8 / (256 * 1024) =
  // 0.203125 s < 0.3 s — only that much of the latency window can hide.
  WanLink link(PaperWan());
  link.RecordRoundTrip(100, 512);
  link.BeginExchange(100, 1, /*overlap_previous=*/true);
  ExchangeTiming timing = link.CompleteExchange(512);
  EXPECT_DOUBLE_EQ(timing.hidden_s, 0.203125);
  EXPECT_DOUBLE_EQ(link.stats().total_seconds(), timing.end_s);
  ASSERT_EQ(link.exchanges().size(), 2u);
  EXPECT_FALSE(link.exchanges()[0].overlapped);
  EXPECT_TRUE(link.exchanges()[1].overlapped);
  EXPECT_DOUBLE_EQ(link.exchanges()[1].hidden_seconds, 0.203125);
}

TEST(WanPipeline, SequentialIssueAfterPipelinedExchangeHidesNothing) {
  WanLink link(PaperWan());
  link.RecordRoundTrip(100, 65536);
  link.BeginExchange(100, 1, /*overlap_previous=*/false);
  ExchangeTiming timing = link.CompleteExchange(512);
  EXPECT_DOUBLE_EQ(timing.hidden_s, 0.0);
  EXPECT_DOUBLE_EQ(link.stats().overlap_hidden_seconds, 0.0);
  EXPECT_DOUBLE_EQ(link.stats().total_seconds(),
                   link.stats().latency_seconds +
                       link.stats().transfer_seconds);
}

TEST(WanPipeline, AbortExchangeAccountsNothing) {
  WanLink link(PaperWan());
  link.BeginExchange(100, 5, /*overlap_previous=*/false);
  EXPECT_TRUE(link.exchange_open());
  link.AbortExchange();
  EXPECT_FALSE(link.exchange_open());
  EXPECT_EQ(link.stats().round_trips, 0u);
  EXPECT_DOUBLE_EQ(link.stats().total_seconds(), 0.0);
  // The link stays fully usable afterwards.
  link.RecordRoundTrip(100, 512);
  EXPECT_EQ(link.stats().round_trips, 1u);
}

TEST(WanPipeline, OnlyOneExchangeMayBeOpen) {
  WanLink link(PaperWan());
  link.BeginExchange(100, 1, /*overlap_previous=*/false);
  // A second Begin while one is open is ignored, not an accounting bug.
  link.BeginExchange(5000, 7, /*overlap_previous=*/true);
  link.CompleteExchange(512);
  EXPECT_EQ(link.stats().round_trips, 1u);
  EXPECT_EQ(link.stats().statements, 1u);
  EXPECT_EQ(link.stats().request_packets, 1u);
}

TEST(WanPipeline, ExchangeLogIsABoundedRing) {
  WanConfig config = PaperWan();
  config.exchange_log_capacity = 3;
  WanLink link(config);
  for (size_t i = 1; i <= 5; ++i) {
    link.RecordBatchRoundTrip(100, 512, /*n_statements=*/i);
  }
  // Cumulative stats keep counting past the ring; the log keeps only
  // the newest `capacity` records, oldest evicted first.
  EXPECT_EQ(link.stats().round_trips, 5u);
  std::vector<ExchangeRecord> records = link.exchanges();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records.front().statements, 3u);
  EXPECT_EQ(records.back().statements, 5u);
  EXPECT_EQ(link.exchanges_dropped(), 2u);

  link.ResetStats();
  EXPECT_TRUE(link.exchanges().empty());
  EXPECT_EQ(link.exchanges_dropped(), 0u);
}

TEST(WanPipeline, AbortExchangeClearsOpenStateAndCounts) {
  WanLink link(PaperWan());
  // Regression: an aborted exchange used to leave the open-exchange
  // bookkeeping (issue time, request bytes, statement count) populated
  // and the abort itself unobservable. The next exchange must account
  // exactly as if the aborted one never happened.
  link.BeginExchange(100000, 9, /*overlap_previous=*/false);
  link.AbortExchange();
  EXPECT_FALSE(link.exchange_open());
  EXPECT_EQ(link.aborted_exchanges(), 1u);
  // Aborting with nothing open is a no-op, not a double count.
  link.AbortExchange();
  EXPECT_EQ(link.aborted_exchanges(), 1u);

  WanLink reference(PaperWan());
  link.BeginExchange(100, 2, /*overlap_previous=*/false);
  ExchangeTiming after_abort = link.CompleteExchange(512);
  reference.BeginExchange(100, 2, /*overlap_previous=*/false);
  ExchangeTiming clean = reference.CompleteExchange(512);
  EXPECT_DOUBLE_EQ(after_abort.seconds(), clean.seconds());
  EXPECT_EQ(link.stats().statements, reference.stats().statements);
  EXPECT_EQ(link.stats().request_packets, reference.stats().request_packets);

  link.ResetStats();
  EXPECT_EQ(link.aborted_exchanges(), 0u);
}

TEST(WanPipeline, AbortAfterDrainLeavesTimelineUntouched) {
  // The fail-fast pipelined path drains server work, then aborts the
  // in-flight exchange: the link timeline must be exactly what it was
  // before BeginExchange, so a later overlapped issue hides under the
  // *completed* transfer, not the aborted one.
  WanLink link(PaperWan());
  link.RecordBatchRoundTrip(100, 4096, /*n_statements=*/1);
  WanLink reference(PaperWan());
  reference.RecordBatchRoundTrip(100, 4096, /*n_statements=*/1);

  link.BeginExchange(50000, 3, /*overlap_previous=*/true);
  link.AbortExchange();
  EXPECT_EQ(link.aborted_exchanges(), 1u);

  link.BeginExchange(100, 1, /*overlap_previous=*/true);
  ExchangeTiming after_abort = link.CompleteExchange(512);
  reference.BeginExchange(100, 1, /*overlap_previous=*/true);
  ExchangeTiming clean = reference.CompleteExchange(512);
  EXPECT_DOUBLE_EQ(after_abort.issue_s, clean.issue_s);
  EXPECT_DOUBLE_EQ(after_abort.hidden_s, clean.hidden_s);
  EXPECT_DOUBLE_EQ(after_abort.seconds(), clean.seconds());
}

TEST(WanPipeline, ResetStatsClearsTheTimeline) {
  WanLink link(PaperWan());
  link.RecordRoundTrip(100, 65536);
  link.ResetStats();
  EXPECT_TRUE(link.exchanges().empty());
  // With the timeline gone there is no previous transfer to hide under:
  // an overlapped issue right after reset degenerates to sequential.
  link.BeginExchange(100, 1, /*overlap_previous=*/true);
  ExchangeTiming timing = link.CompleteExchange(512);
  EXPECT_DOUBLE_EQ(timing.hidden_s, 0.0);
  EXPECT_DOUBLE_EQ(timing.issue_s, 0.0);
}

}  // namespace
}  // namespace pdm::net
