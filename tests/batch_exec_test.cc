// Tests for the batched execution path (DESIGN.md 5d): per-statement
// error semantics of DbServer::ExecuteBatch, determinism across
// batch_threads, statement-log batch/worker attribution, the engine's
// thread-safety contract under concurrent cold-index builds and
// plan-cache fingerprint collisions, and the batched navigational
// strategy's α+1 round-trip schedule on the 5×5 product.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "client/experiment.h"
#include "common/string_util.h"
#include "server/db_server.h"
#include "sql/fingerprint.h"

namespace pdm {
namespace {

using model::ActionKind;
using model::StrategyKind;

/// A server with t(id INTEGER, name TEXT) of `rows` rows "n0".."n<rows-1>".
void Seed(DbServer* server, int rows) {
  ASSERT_TRUE(
      server->Execute("CREATE TABLE t (id INTEGER, name TEXT)", nullptr,
                      nullptr)
          .ok());
  for (int i = 0; i < rows; ++i) {
    ASSERT_TRUE(server
                    ->Execute(StrFormat("INSERT INTO t VALUES (%d, 'n%d')",
                                        i, i),
                              nullptr, nullptr)
                    .ok());
  }
}

std::string PointQuery(int id) {
  return StrFormat("SELECT name FROM t WHERE id = %d", id);
}

TEST(BatchExec, FailFastPerStatement) {
  DbServer server;
  Seed(&server, 8);
  // Slot 3 is not even parseable, so the batch falls back to serial
  // execution; errors must stay in their slots either way.
  std::vector<std::string> statements = {
      PointQuery(1), "SELECT nosuchcol FROM t", PointQuery(2),
      "THIS IS NOT SQL", PointQuery(3)};
  std::vector<DbServer::BatchStatementResult> results =
      server.ExecuteBatch(statements);
  ASSERT_EQ(results.size(), 5u);
  EXPECT_TRUE(results[0].status.ok());
  EXPECT_FALSE(results[1].status.ok());
  EXPECT_TRUE(results[2].status.ok());
  EXPECT_FALSE(results[3].status.ok());
  EXPECT_TRUE(results[4].status.ok());
  // Error slots carry an empty result but still occupy a minimal frame.
  EXPECT_EQ(results[1].result.num_rows(), 0u);
  EXPECT_GT(results[1].response_bytes, 0u);
  EXPECT_EQ(results[0].result.num_rows(), 1u);
  EXPECT_EQ(results[4].result.At(0, 0).ToString(), "n3");
}

TEST(BatchExec, FailFastPerStatementParallel) {
  DbServer server;
  Seed(&server, 8);
  server.mutable_config().batch_threads = 4;
  // Every statement fingerprints as a SELECT (so the batch stays
  // parallel-eligible); the bad ones fail at bind time.
  std::vector<std::string> statements;
  for (int i = 0; i < 16; ++i) {
    statements.push_back(i % 4 == 2 ? "SELECT nosuchcol FROM t"
                                    : PointQuery(i % 8));
  }
  std::vector<DbServer::BatchStatementResult> results =
      server.ExecuteBatch(statements);
  ASSERT_EQ(results.size(), statements.size());
  for (int i = 0; i < 16; ++i) {
    if (i % 4 == 2) {
      EXPECT_FALSE(results[i].status.ok()) << i;
      EXPECT_EQ(results[i].result.num_rows(), 0u) << i;
    } else {
      ASSERT_TRUE(results[i].status.ok()) << i << ": "
                                          << results[i].status.ToString();
      EXPECT_EQ(results[i].result.At(0, 0).ToString(),
                StrFormat("n%d", i % 8))
          << i;
    }
  }
}

TEST(BatchExec, DmlBatchRunsSeriallyInStatementOrder) {
  DbServer server;
  Seed(&server, 2);
  server.mutable_config().batch_threads = 8;
  server.EnableStatementLog(true);
  // The INSERT forces the whole batch serial; the trailing SELECT must
  // observe it (statement order is execution order).
  std::vector<std::string> statements = {
      "SELECT COUNT(*) FROM t", "INSERT INTO t VALUES (99, 'n99')",
      PointQuery(99)};
  std::vector<DbServer::BatchStatementResult> results =
      server.ExecuteBatch(statements);
  ASSERT_TRUE(results[0].status.ok());
  ASSERT_TRUE(results[1].status.ok());
  ASSERT_TRUE(results[2].status.ok());
  EXPECT_EQ(results[0].result.At(0, 0).int64_value(), 2);
  EXPECT_EQ(results[2].result.At(0, 0).ToString(), "n99");
  for (const DbServer::StatementLogEntry& entry : server.statement_log()) {
    EXPECT_EQ(entry.worker, 0u);  // serial fallback = calling thread
  }
}

TEST(BatchExec, ResultsIdenticalAcrossThreadCounts) {
  DbServer server;
  Seed(&server, 32);
  std::vector<std::string> statements;
  for (int i = 0; i < 32; ++i) statements.push_back(PointQuery(i));

  server.mutable_config().batch_threads = 1;
  std::vector<DbServer::BatchStatementResult> reference =
      server.ExecuteBatch(statements);
  for (size_t threads : {2u, 4u, 8u}) {
    server.mutable_config().batch_threads = threads;
    std::vector<DbServer::BatchStatementResult> results =
        server.ExecuteBatch(statements);
    ASSERT_EQ(results.size(), reference.size()) << threads;
    for (size_t i = 0; i < results.size(); ++i) {
      ASSERT_TRUE(results[i].status.ok()) << threads << "/" << i;
      EXPECT_EQ(results[i].result.ToString(1 << 20),
                reference[i].result.ToString(1 << 20))
          << threads << "/" << i;
      EXPECT_EQ(results[i].response_bytes, reference[i].response_bytes);
    }
  }
}

TEST(BatchExec, StatementLogRecordsBatchIdsAndWorkers) {
  DbServer server;
  Seed(&server, 8);
  server.EnableStatementLog(true);
  server.mutable_config().batch_threads = 4;

  std::vector<std::string> first = {PointQuery(0), PointQuery(1),
                                    PointQuery(2)};
  std::vector<std::string> second = {PointQuery(3), PointQuery(4)};
  server.ClearStatementLog();
  server.ExecuteBatch(first);
  server.ExecuteBatch(second);

  const std::vector<DbServer::StatementLogEntry>& log =
      server.statement_log();
  ASSERT_EQ(log.size(), 5u);
  // Statement order is preserved regardless of which worker ran what,
  // and the two batches carry distinct monotonically increasing ids.
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(log[i].sql, first[i]);
    EXPECT_EQ(log[i].batch_id, log[0].batch_id);
    EXPECT_LT(log[i].worker, 4u);
  }
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(log[3 + i].sql, second[i]);
    EXPECT_EQ(log[3 + i].batch_id, log[3].batch_id);
  }
  EXPECT_GT(log[0].batch_id, 0u);
  EXPECT_GT(log[3].batch_id, log[0].batch_id);

  // Standalone Execute() is batch 0.
  ResultSet out;
  size_t bytes = 0;
  ASSERT_TRUE(server.Execute(PointQuery(5), &out, &bytes).ok());
  EXPECT_EQ(server.statement_log().back().batch_id, 0u);
}

TEST(BatchExec, ResetObservabilityClearsLogAndCacheCounters) {
  DbServer server;
  Seed(&server, 4);
  server.EnableStatementLog(true);
  ResultSet out;
  ASSERT_TRUE(server.Execute(PointQuery(1), &out, nullptr).ok());
  ASSERT_TRUE(server.Execute(PointQuery(1), &out, nullptr).ok());
  EXPECT_FALSE(server.statement_log().empty());
  EXPECT_GT(server.plan_cache_stats().hits + server.plan_cache_stats().misses,
            0u);

  server.ResetObservability();
  EXPECT_TRUE(server.statement_log().empty());
  EXPECT_EQ(server.plan_cache_stats().hits, 0u);
  EXPECT_EQ(server.plan_cache_stats().misses, 0u);
  // Cached plans themselves survive: the next repeat is a hit.
  ASSERT_TRUE(server.Execute(PointQuery(1), &out, nullptr).ok());
  EXPECT_EQ(server.plan_cache_stats().hits, 1u);
}

TEST(BatchExec, ExecuteWithoutSizingConsumers) {
  DbServer server;
  Seed(&server, 4);
  // No response_bytes out-param and no statement log: the sizing walk is
  // skipped entirely; execution must still work.
  ResultSet out;
  ASSERT_TRUE(server.Execute("SELECT COUNT(*) FROM t", &out, nullptr).ok());
  EXPECT_EQ(out.At(0, 0).int64_value(), 4);
}

// The thread-safety regression the concurrency contract exists for:
// statements of one parallel batch all hit the same cold lazy column
// index and the same plan-cache fingerprint. Run under
// -DPDM_THREAD_SANITIZE=ON this is the data-race canary.
TEST(BatchExec, ConcurrentColdIndexAndPlanCacheFingerprint) {
  for (int round = 0; round < 4; ++round) {
    DbServer server;  // fresh server: cold index, empty plan cache
    Seed(&server, 64);
    server.mutable_config().batch_threads = 8;
    std::vector<std::string> statements;
    for (int i = 0; i < 64; ++i) statements.push_back(PointQuery(i));
    std::vector<DbServer::BatchStatementResult> results =
        server.ExecuteBatch(statements);
    ASSERT_EQ(results.size(), 64u);
    for (int i = 0; i < 64; ++i) {
      ASSERT_TRUE(results[i].status.ok())
          << i << ": " << results[i].status.ToString();
      ASSERT_EQ(results[i].result.num_rows(), 1u) << i;
      EXPECT_EQ(results[i].result.At(0, 0).ToString(), StrFormat("n%d", i));
    }
    // Every statement shares one fingerprint; however the concurrent
    // lookups interleave (hit, miss, or contention bypass), the counters
    // must account for all of them.
    PlanCacheStats stats = server.plan_cache_stats();
    EXPECT_EQ(stats.hits + stats.misses, 64u);
    EXPECT_LE(stats.bypasses, stats.misses);
  }
}

TEST(BatchExec, ConnectionBatchIsOneRoundTrip) {
  client::ExperimentConfig config;
  config.generator.depth = 2;
  config.generator.branching = 3;
  Result<std::unique_ptr<client::Experiment>> experiment =
      client::Experiment::Create(config);
  ASSERT_TRUE(experiment.ok()) << experiment.status();
  client::Connection& conn = (*experiment)->connection();

  conn.ResetStats();
  std::vector<std::string> statements = {
      "SELECT COUNT(*) FROM assy", "SELECT COUNT(*) FROM comp",
      "SELECT nosuchcol FROM assy"};
  std::vector<Result<ResultSet>> out;
  ASSERT_TRUE(conn.ExecuteBatch(statements, &out).ok());
  ASSERT_EQ(out.size(), 3u);
  EXPECT_TRUE(out[0].ok());
  EXPECT_TRUE(out[1].ok());
  EXPECT_FALSE(out[2].ok());
  EXPECT_EQ(conn.stats().round_trips, 1u);
  EXPECT_EQ(conn.stats().statements, 3u);
  EXPECT_EQ(conn.stats().messages, 2u);
}

TEST(BatchExec, EmptyConnectionBatchChargesNothing) {
  client::ExperimentConfig config;
  config.generator.depth = 2;
  config.generator.branching = 3;
  Result<std::unique_ptr<client::Experiment>> experiment =
      client::Experiment::Create(config);
  ASSERT_TRUE(experiment.ok()) << experiment.status();
  client::Connection& conn = (*experiment)->connection();

  conn.ResetStats();
  std::vector<std::string> statements;
  std::vector<Result<ResultSet>> out = {Result<ResultSet>(ResultSet())};
  ASSERT_TRUE(conn.ExecuteBatch(statements, &out).ok());
  EXPECT_TRUE(out.empty());  // stale slots are cleared, not kept
  EXPECT_EQ(conn.stats().round_trips, 0u);
  EXPECT_EQ(conn.stats().statements, 0u);
  EXPECT_EQ(conn.stats().messages, 0u);
  EXPECT_DOUBLE_EQ(conn.stats().total_seconds(), 0.0);

  out = {Result<ResultSet>(ResultSet())};
  ASSERT_TRUE(conn.ExecuteBatchSized(statements, &out, [](const ResultSet&) {
                    return size_t{512};
                  })
                  .ok());
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(conn.stats().round_trips, 0u);
}

TEST(BatchExec, BatchFingerprintsEachStatementExactlyOnce) {
  DbServer server;
  Seed(&server, 16);
  server.mutable_config().batch_threads = 4;
  std::vector<std::string> statements;
  for (int i = 0; i < 16; ++i) statements.push_back(PointQuery(i));

  // The read-only classification and the plan-cache lookup share one
  // fingerprint (= one lexer pass) per statement; the pre-fix path paid
  // two. Holds on both the cold and the cache-hitting run, serial and
  // parallel.
  for (size_t threads : {1u, 4u}) {
    server.mutable_config().batch_threads = threads;
    const uint64_t before = sql::FingerprintCallCount();
    std::vector<DbServer::BatchStatementResult> results =
        server.ExecuteBatch(statements);
    const uint64_t after = sql::FingerprintCallCount();
    for (const DbServer::BatchStatementResult& r : results) {
      ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    }
    EXPECT_EQ(after - before, statements.size()) << "threads=" << threads;
  }
}

/// The tentpole's acceptance check on the deterministic 5×5 product:
/// batched MLE retrieves the byte-identical tree in exactly α+1 round
/// trips, for both rule-evaluation variants and all thread counts.
TEST(BatchedStrategy, FiveByFiveExactRoundTripsAndIdenticalTree) {
  client::ExperimentConfig config;
  config.generator.depth = 5;
  config.generator.branching = 5;
  config.generator.sigma = 0.6;
  Result<std::unique_ptr<client::Experiment>> experiment =
      client::Experiment::Create(config);
  ASSERT_TRUE(experiment.ok()) << experiment.status();
  client::Experiment& e = **experiment;

  Result<client::ActionResult> nav_late = e.RunAction(
      StrategyKind::kNavigationalLate, ActionKind::kMultiLevelExpand);
  Result<client::ActionResult> nav_early = e.RunAction(
      StrategyKind::kNavigationalEarly, ActionKind::kMultiLevelExpand);
  ASSERT_TRUE(nav_late.ok()) << nav_late.status();
  ASSERT_TRUE(nav_early.ok()) << nav_early.status();

  const struct {
    StrategyKind batched;
    const client::ActionResult* reference;
  } kVariants[] = {{StrategyKind::kBatchedLate, &*nav_late},
                   {StrategyKind::kBatchedEarly, &*nav_early}};
  for (const auto& variant : kVariants) {
    for (size_t threads : {1u, 4u}) {
      e.server().mutable_config().batch_threads = threads;
      e.server().EnableStatementLog(true);
      e.server().ResetObservability();
      Result<client::ActionResult> batched =
          e.RunAction(variant.batched, ActionKind::kMultiLevelExpand);
      ASSERT_TRUE(batched.ok()) << batched.status();

      // α+1 round trips on the wire, n_v+1 statements inside them.
      EXPECT_EQ(batched->wan.round_trips, 6u);
      EXPECT_EQ(batched->wan.statements, e.product().visible_nodes + 1);
      EXPECT_EQ(batched->wan.statements, variant.reference->wan.round_trips);

      // The statement log agrees: every expand belongs to one of α+1
      // batches.
      std::set<uint64_t> batch_ids;
      size_t logged = 0;
      for (const DbServer::StatementLogEntry& entry :
           e.server().statement_log()) {
        if (entry.batch_id == 0) continue;  // late-eval local rule probe
        batch_ids.insert(entry.batch_id);
        ++logged;
      }
      EXPECT_EQ(batch_ids.size(), 6u);
      EXPECT_EQ(logged, batched->wan.statements);

      // Byte-identical tree and identical transmitted volume.
      EXPECT_EQ(batched->tree.ToString(1 << 20),
                variant.reference->tree.ToString(1 << 20));
      EXPECT_EQ(batched->transmitted_rows,
                variant.reference->transmitted_rows);
      EXPECT_EQ(batched->visible_nodes, variant.reference->visible_nodes);
      // Fewer round trips must never change what is shipped.
      EXPECT_DOUBLE_EQ(batched->wan.response_payload_bytes,
                       variant.reference->wan.response_payload_bytes);
      EXPECT_LT(batched->wan.total_seconds(),
                variant.reference->wan.total_seconds());
    }
  }
  e.server().mutable_config().batch_threads = 1;
}

}  // namespace
}  // namespace pdm
