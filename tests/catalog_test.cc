// Unit tests for schemas, tables (incl. lazy column indexes) and the
// catalog.

#include <gtest/gtest.h>

#include "catalog/catalog.h"

namespace pdm {
namespace {

Schema TwoColumnSchema() {
  return Schema({Column{"id", ColumnType::kInt64},
                 Column{"name", ColumnType::kString}});
}

TEST(Schema, FindColumnIsCaseInsensitive) {
  Schema schema = TwoColumnSchema();
  EXPECT_EQ(schema.FindColumn("ID"), 0u);
  EXPECT_EQ(schema.FindColumn("Name"), 1u);
  EXPECT_FALSE(schema.FindColumn("missing").has_value());
}

TEST(Schema, ValidateRowChecksArityAndKinds) {
  Schema schema = TwoColumnSchema();
  EXPECT_TRUE(schema.ValidateRow({Value::Int64(1), Value::String("a")}).ok());
  EXPECT_TRUE(schema.ValidateRow({Value::Null(), Value::Null()}).ok());
  EXPECT_FALSE(schema.ValidateRow({Value::Int64(1)}).ok());
  EXPECT_FALSE(
      schema.ValidateRow({Value::String("x"), Value::String("a")}).ok());
}

TEST(Schema, IntWidensIntoDoubleColumns) {
  Schema schema({Column{"w", ColumnType::kDouble}});
  EXPECT_TRUE(schema.ValidateRow({Value::Int64(3)}).ok());
  EXPECT_FALSE(Schema({Column{"i", ColumnType::kInt64}})
                   .ValidateRow({Value::Double(3.5)})
                   .ok());
}

TEST(Schema, TypeNamesRoundTrip) {
  EXPECT_EQ(*ParseColumnType("integer"), ColumnType::kInt64);
  EXPECT_EQ(*ParseColumnType("VARCHAR"), ColumnType::kString);
  EXPECT_EQ(*ParseColumnType("Boolean"), ColumnType::kBool);
  EXPECT_EQ(*ParseColumnType("double"), ColumnType::kDouble);
  EXPECT_FALSE(ParseColumnType("blob").ok());
  EXPECT_EQ(Schema(TwoColumnSchema()).ToString(), "id INTEGER, name VARCHAR");
}

TEST(Table, InsertValidatesAgainstSchema) {
  Table table("t", TwoColumnSchema());
  EXPECT_TRUE(table.Insert({Value::Int64(1), Value::String("a")}).ok());
  Status bad = table.Insert({Value::String("x"), Value::String("a")});
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(table.num_rows(), 1u);
}

TEST(Table, UpdateAndDeleteRows) {
  Table table("t", TwoColumnSchema());
  for (int i = 0; i < 10; ++i) {
    table.InsertUnchecked({Value::Int64(i), Value::String("n")});
  }
  size_t updated = table.UpdateRows(
      [](const Row& row) { return row[0].int64_value() % 2 == 0; },
      [](Row& row) { row[1] = Value::String("even"); },
      /*write_ts=*/1);
  EXPECT_EQ(updated, 5u);
  size_t deleted = table.DeleteRows(
      [](const Row& row) { return row[1].string_value() == "even"; },
      /*write_ts=*/2);
  EXPECT_EQ(deleted, 5u);
  EXPECT_EQ(table.num_rows(), 5u);

  // Old versions are still there for older snapshots; GC at the full
  // horizon prunes exactly the dead ones.
  EXPECT_EQ(table.SnapshotRows(/*ts=*/0).size(), 10u);
  EXPECT_EQ(table.SnapshotRows(/*ts=*/1).size(), 10u);  // 5 odd + 5 even
  EXPECT_EQ(table.SnapshotRows(/*ts=*/2).size(), 5u);
  EXPECT_EQ(table.PruneVersions(/*horizon=*/2), 10u);
  EXPECT_EQ(table.num_rows(), 5u);
  EXPECT_EQ(table.num_versions(), 5u);
}

TEST(Table, ZeroMatchDmlKeepsIndexesFresh) {
  Table table("t", TwoColumnSchema());
  for (int i = 0; i < 4; ++i) {
    table.InsertUnchecked({Value::Int64(i), Value::String("n")});
  }
  (void)table.GetOrBuildIndex(0);
  ASSERT_TRUE(table.HasFreshIndex(0));

  size_t updated = table.UpdateRows(
      [](const Row& row) { return row[0].int64_value() > 100; },
      [](Row& row) { row[1] = Value::String("x"); },
      /*write_ts=*/1);
  EXPECT_EQ(updated, 0u);
  EXPECT_TRUE(table.HasFreshIndex(0));

  size_t deleted = table.DeleteRows(
      [](const Row& row) { return row[0].int64_value() > 100; },
      /*write_ts=*/2);
  EXPECT_EQ(deleted, 0u);
  EXPECT_TRUE(table.HasFreshIndex(0));
}

TEST(Table, ColumnIndexFindsRowPositions) {
  Table table("t", TwoColumnSchema());
  for (int i = 0; i < 100; ++i) {
    table.InsertUnchecked({Value::Int64(i % 10), Value::String("n")});
  }
  const Table::ColumnIndex& index = table.GetOrBuildIndex(0);
  auto it = index.find(Value::Int64(3));
  ASSERT_NE(it, index.end());
  EXPECT_EQ(it->second.size(), 10u);
  for (size_t pos : it->second) {
    EXPECT_EQ(table.VersionData(pos)[0].int64_value(), 3);
  }
}

TEST(Table, IndexSkipsNullsAndInvalidatesOnMutation) {
  Table table("t", TwoColumnSchema());
  table.InsertUnchecked({Value::Null(), Value::String("a")});
  table.InsertUnchecked({Value::Int64(1), Value::String("b")});
  const Table::ColumnIndex& index = table.GetOrBuildIndex(0);
  EXPECT_EQ(index.size(), 1u);  // NULL not indexed

  table.InsertUnchecked({Value::Int64(1), Value::String("c")});
  const Table::ColumnIndex& rebuilt = table.GetOrBuildIndex(0);
  EXPECT_EQ(rebuilt.find(Value::Int64(1))->second.size(), 2u);
}

TEST(Catalog, CreateFindDrop) {
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateTable("Assy", TwoColumnSchema()).ok());
  EXPECT_TRUE(catalog.HasTable("assy"));  // case-insensitive
  EXPECT_NE(catalog.FindTable("ASSY"), nullptr);

  Status dup = catalog.CreateTable("assy", TwoColumnSchema());
  EXPECT_EQ(dup.code(), StatusCode::kAlreadyExists);
  EXPECT_TRUE(
      catalog.CreateTable("assy", TwoColumnSchema(), /*if_not_exists=*/true)
          .ok());

  EXPECT_TRUE(catalog.DropTable("assy").ok());
  EXPECT_EQ(catalog.DropTable("assy").code(), StatusCode::kNotFound);
  EXPECT_TRUE(catalog.DropTable("assy", /*if_exists=*/true).ok());
}

TEST(Catalog, TableNamesSorted) {
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateTable("zeta", TwoColumnSchema()).ok());
  ASSERT_TRUE(catalog.CreateTable("alpha", TwoColumnSchema()).ok());
  std::vector<std::string> names = catalog.TableNames();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "alpha");
  EXPECT_EQ(names[1], "zeta");
}

TEST(Catalog, GetTableReturnsNotFound) {
  Catalog catalog;
  Result<Table*> missing = catalog.GetTable("nope");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace pdm
