// Tests for the builtin scalar functions and the registry.

#include <gtest/gtest.h>

#include "engine/database.h"

namespace pdm {
namespace {

class FunctionsTest : public ::testing::Test {
 protected:
  Value Eval(const std::string& expr) {
    Result<ResultSet> result = db_.Query("SELECT " + expr);
    EXPECT_TRUE(result.ok()) << expr << " -> " << result.status();
    return result.ok() ? result->At(0, 0) : Value::Null();
  }

  Database db_;
};

TEST_F(FunctionsTest, Abs) {
  EXPECT_EQ(Eval("ABS(-5)").int64_value(), 5);
  EXPECT_DOUBLE_EQ(Eval("ABS(-2.5)").double_value(), 2.5);
  EXPECT_TRUE(Eval("ABS(NULL)").is_null());
}

TEST_F(FunctionsTest, Mod) {
  EXPECT_EQ(Eval("MOD(7, 3)").int64_value(), 1);
  EXPECT_FALSE(db_.Query("SELECT MOD(1, 0)").ok());
  EXPECT_FALSE(db_.Query("SELECT MOD(1.5, 2)").ok());
}

TEST_F(FunctionsTest, StringFunctions) {
  EXPECT_EQ(Eval("LENGTH('abc')").int64_value(), 3);
  EXPECT_EQ(Eval("UPPER('aBc')").string_value(), "ABC");
  EXPECT_EQ(Eval("LOWER('AbC')").string_value(), "abc");
  EXPECT_EQ(Eval("SUBSTR('abcdef', 2, 3)").string_value(), "bcd");
  EXPECT_EQ(Eval("SUBSTR('abcdef', 4)").string_value(), "def");
  EXPECT_EQ(Eval("SUBSTR('abc', 10)").string_value(), "");
  EXPECT_EQ(Eval("SUBSTR('abc', 1, 0)").string_value(), "");
  EXPECT_TRUE(Eval("UPPER(NULL)").is_null());
}

TEST_F(FunctionsTest, CoalesceAndNullif) {
  EXPECT_EQ(Eval("COALESCE(NULL, NULL, 3)").int64_value(), 3);
  EXPECT_TRUE(Eval("COALESCE(NULL, NULL)").is_null());
  EXPECT_TRUE(Eval("NULLIF(1, 1)").is_null());
  EXPECT_EQ(Eval("NULLIF(1, 2)").int64_value(), 1);
  EXPECT_TRUE(Eval("NULLIF(NULL, 1)").is_null());
}

TEST_F(FunctionsTest, BitOperations) {
  EXPECT_EQ(Eval("BITAND(6, 3)").int64_value(), 2);
  EXPECT_EQ(Eval("BITOR(4, 3)").int64_value(), 7);
  EXPECT_TRUE(Eval("BITAND(NULL, 1)").is_null());
  // Structure option overlap as the rule layer expresses it.
  EXPECT_TRUE(Eval("BITAND(3, 1) <> 0").bool_value());
  EXPECT_FALSE(Eval("BITAND(2, 1) <> 0").bool_value());
}

TEST_F(FunctionsTest, OverlapsRange) {
  // Effectivity overlap semantics (closed intervals).
  EXPECT_TRUE(Eval("OVERLAPS_RANGE(1, 10, 5, 20)").bool_value());
  EXPECT_TRUE(Eval("OVERLAPS_RANGE(1, 10, 10, 20)").bool_value());
  EXPECT_FALSE(Eval("OVERLAPS_RANGE(1, 9, 10, 20)").bool_value());
  EXPECT_TRUE(Eval("OVERLAPS_RANGE(5, 6, 1, 100)").bool_value());
}

TEST_F(FunctionsTest, GreatestLeast) {
  EXPECT_EQ(Eval("GREATEST(1, 5, 3)").int64_value(), 5);
  EXPECT_EQ(Eval("LEAST(2, 7, 4)").int64_value(), 2);
  EXPECT_EQ(Eval("GREATEST('a', 'c', 'b')").string_value(), "c");
  EXPECT_TRUE(Eval("GREATEST(1, NULL)").is_null());
  EXPECT_FALSE(db_.Query("SELECT GREATEST(1, 'a')").ok());
}

TEST_F(FunctionsTest, ArityChecking) {
  EXPECT_FALSE(db_.Query("SELECT ABS(1, 2)").ok());
  EXPECT_FALSE(db_.Query("SELECT LENGTH()").ok());
}

TEST_F(FunctionsTest, UserRegisteredFunction) {
  ASSERT_TRUE(db_.RegisterFunction(
                    "double_it", 1, 1,
                    [](const std::vector<Value>& args) -> Result<Value> {
                      if (args[0].is_null()) return Value::Null();
                      return Value::Int64(args[0].int64_value() * 2);
                    })
                  .ok());
  EXPECT_EQ(Eval("DOUBLE_IT(21)").int64_value(), 42);
  // Registration is case-insensitive; duplicates rejected.
  Status dup = db_.RegisterFunction(
      "Double_It", 1, 1,
      [](const std::vector<Value>&) -> Result<Value> { return Value::Null(); });
  EXPECT_EQ(dup.code(), StatusCode::kAlreadyExists);
}

TEST_F(FunctionsTest, TransientAttributeUseCase) {
  // The paper's Section 4.1: a computed "transient attribute" provided
  // as a stored function so row conditions can be pushed to the server.
  ASSERT_TRUE(db_.RegisterFunction(
                    "volume_class", 1, 1,
                    [](const std::vector<Value>& args) -> Result<Value> {
                      if (args[0].is_null()) return Value::Null();
                      return Value::String(
                          args[0].AsDouble() > 10 ? "bulky" : "compact");
                    })
                  .ok());
  ASSERT_TRUE(db_.ExecuteScript(R"sql(
    CREATE TABLE part (id INTEGER, weight DOUBLE);
    INSERT INTO part VALUES (1, 3.0), (2, 30.0);
  )sql")
                  .ok());
  Result<ResultSet> rs = db_.Query(
      "SELECT id FROM part WHERE VOLUME_CLASS(weight) = 'compact'");
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rs->num_rows(), 1u);
  EXPECT_EQ(rs->At(0, 0).int64_value(), 1);
}

}  // namespace
}  // namespace pdm
