// End-to-end smoke test: the paper's running example (Figure 2) executed
// through the SQL engine, including the Section 5.2 recursive query and
// the Section 5.3 tree-condition encodings.

#include <gtest/gtest.h>

#include "engine/database.h"

namespace pdm {
namespace {

// Builds the Figure 2 database: assemblies, components, links.
void BuildPaperExample(Database* db) {
  ASSERT_TRUE(db->ExecuteScript(R"sql(
    CREATE TABLE assy (type VARCHAR, obid INTEGER, name VARCHAR, dec VARCHAR);
    CREATE TABLE comp (type VARCHAR, obid INTEGER, name VARCHAR);
    CREATE TABLE link (type VARCHAR, obid INTEGER, left INTEGER,
                       right INTEGER, eff_from INTEGER, eff_to INTEGER);
    INSERT INTO assy VALUES
      ('assy', 1, 'Assy1', '+'), ('assy', 2, 'Assy2', '+'),
      ('assy', 3, 'Assy3', '+'), ('assy', 4, 'Assy4', '+'),
      ('assy', 5, 'Assy5', '-'), ('assy', 6, 'Assy6', '-'),
      ('assy', 7, 'Assy7', '-'), ('assy', 8, 'Assy8', '-');
    INSERT INTO comp VALUES
      ('comp', 101, 'Comp1'), ('comp', 102, 'Comp2'), ('comp', 103, 'Comp3'),
      ('comp', 104, 'Comp4'), ('comp', 105, 'Comp5'), ('comp', 106, 'Comp6'),
      ('comp', 107, 'Comp7');
    INSERT INTO link VALUES
      ('link', 1001, 1, 2, 1, 3),   ('link', 1002, 1, 3, 4, 10),
      ('link', 1003, 2, 4, 1, 10),  ('link', 1004, 2, 5, 1, 10),
      ('link', 1005, 4, 101, 6, 10),('link', 1006, 4, 102, 1, 5),
      ('link', 1007, 5, 103, 1, 10),('link', 1008, 5, 104, 1, 10);
  )sql")
                  .ok());
}

// The Section 5.2 recursive query, verbatim modulo whitespace.
constexpr const char* kRecursiveQuery = R"sql(
WITH RECURSIVE rtbl (type, obid, name, dec) AS
  (SELECT type, obid, name, dec FROM assy WHERE assy.obid = 1
   UNION
   SELECT assy.type, assy.obid, assy.name, assy.dec
   FROM rtbl JOIN link ON rtbl.obid = link.left
             JOIN assy ON link.right = assy.obid
   UNION
   SELECT comp.type, comp.obid, comp.name, ''
   FROM rtbl JOIN link ON rtbl.obid = link.left
             JOIN comp ON link.right = comp.obid)
SELECT type, obid, name, dec AS "DEC",
       cast(NULL AS integer) AS "LEFT",
       cast(NULL AS integer) AS "RIGHT",
       cast(NULL AS integer) AS "EFF_FROM",
       cast(NULL AS integer) AS "EFF_TO"
FROM rtbl
UNION
SELECT type, obid, '' AS "NAME", '' AS "DEC",
       left, right, eff_from, eff_to
FROM link
WHERE (left IN (SELECT obid FROM rtbl)
   AND right IN (SELECT obid FROM rtbl))
ORDER BY 1, 2
)sql";

TEST(PaperExample, RecursiveQueryReturnsHomogenizedTree) {
  Database db;
  BuildPaperExample(&db);
  Result<ResultSet> result = db.Query(kRecursiveQuery);
  ASSERT_TRUE(result.ok()) << result.status();
  const ResultSet& rs = *result;

  // Figure 3: 5 assemblies + 4 components + 8 links = 17 rows.
  EXPECT_EQ(rs.num_rows(), 17u);
  EXPECT_EQ(rs.num_columns(), 8u);

  // ORDER BY 1,2: assemblies first (type 'assy'), then comps, then links.
  EXPECT_EQ(rs.At(0, 0).string_value(), "assy");
  EXPECT_EQ(rs.At(0, 1).int64_value(), 1);
  EXPECT_EQ(rs.At(4, 1).int64_value(), 5);
  EXPECT_EQ(rs.At(5, 0).string_value(), "comp");
  EXPECT_EQ(rs.At(5, 1).int64_value(), 101);
  EXPECT_EQ(rs.At(9, 0).string_value(), "link");
  EXPECT_EQ(rs.At(9, 1).int64_value(), 1001);
  // Link rows carry structure columns; object rows carry NULLs there.
  EXPECT_TRUE(rs.At(0, 4).is_null());
  EXPECT_EQ(rs.At(9, 4).int64_value(), 1);
  EXPECT_EQ(rs.At(9, 5).int64_value(), 2);
}

TEST(PaperExample, ForAllRowsConditionReturnsEmptyTree) {
  // Section 5.3.1: all assemblies must be decomposable; Assy5 is not, so
  // the all-or-nothing encoding must return the empty result.
  Database db;
  BuildPaperExample(&db);
  Result<ResultSet> result = db.Query(R"sql(
WITH RECURSIVE rtbl (type, obid, name, dec) AS
  (SELECT type, obid, name, dec FROM assy WHERE assy.obid = 1
   UNION
   SELECT assy.type, assy.obid, assy.name, assy.dec
   FROM rtbl JOIN link ON rtbl.obid = link.left
             JOIN assy ON link.right = assy.obid
   UNION
   SELECT comp.type, comp.obid, comp.name, ''
   FROM rtbl JOIN link ON rtbl.obid = link.left
             JOIN comp ON link.right = comp.obid)
SELECT type, obid, name, dec AS "DEC",
       cast(NULL AS integer) AS "LEFT", cast(NULL AS integer) AS "RIGHT",
       cast(NULL AS integer) AS "EFF_FROM", cast(NULL AS integer) AS "EFF_TO"
FROM rtbl
WHERE NOT EXISTS (SELECT * FROM rtbl WHERE (type = 'assy' AND dec != '+'))
UNION
SELECT type, obid, '' AS "NAME", '' AS "DEC", left, right, eff_from, eff_to
FROM link
WHERE (left IN (SELECT obid FROM rtbl)
   AND right IN (SELECT obid FROM rtbl))
  AND NOT EXISTS (SELECT * FROM rtbl WHERE (type = 'assy' AND dec != '+'))
ORDER BY 1, 2
)sql");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->num_rows(), 0u);
}

TEST(PaperExample, TreeAggregateConditionKeepsSmallTree) {
  // Section 5.3.3: at most ten assemblies; the tree has five, so the
  // whole tree comes back.
  Database db;
  BuildPaperExample(&db);
  Result<ResultSet> result = db.Query(R"sql(
WITH RECURSIVE rtbl (type, obid, name, dec) AS
  (SELECT type, obid, name, dec FROM assy WHERE assy.obid = 1
   UNION
   SELECT assy.type, assy.obid, assy.name, assy.dec
   FROM rtbl JOIN link ON rtbl.obid = link.left
             JOIN assy ON link.right = assy.obid
   UNION
   SELECT comp.type, comp.obid, comp.name, ''
   FROM rtbl JOIN link ON rtbl.obid = link.left
             JOIN comp ON link.right = comp.obid)
SELECT type, obid, name, dec AS "DEC",
       cast(NULL AS integer) AS "LEFT", cast(NULL AS integer) AS "RIGHT",
       cast(NULL AS integer) AS "EFF_FROM", cast(NULL AS integer) AS "EFF_TO"
FROM rtbl
WHERE (SELECT COUNT(*) FROM rtbl WHERE type = 'assy') <= 10
UNION
SELECT type, obid, '' AS "NAME", '' AS "DEC", left, right, eff_from, eff_to
FROM link
WHERE (left IN (SELECT obid FROM rtbl)
   AND right IN (SELECT obid FROM rtbl))
  AND (SELECT COUNT(*) FROM rtbl WHERE type = 'assy') <= 10
ORDER BY 1, 2
)sql");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->num_rows(), 17u);
}

TEST(PaperExample, ExistsStructureConditionFiltersComponents) {
  // Section 5.3.2: components are visible only if specified by at least
  // one document. Only Comp3 (103) has a spec.
  Database db;
  BuildPaperExample(&db);
  ASSERT_TRUE(db.ExecuteScript(R"sql(
    CREATE TABLE spec (type VARCHAR, obid INTEGER, title VARCHAR);
    CREATE TABLE specified_by (left INTEGER, right INTEGER);
    INSERT INTO spec VALUES ('spec', 9001, 'Spec for Comp3');
    INSERT INTO specified_by VALUES (103, 9001);
  )sql")
                  .ok());
  Result<ResultSet> result = db.Query(R"sql(
WITH RECURSIVE rtbl (type, obid, name, dec) AS
  (SELECT type, obid, name, dec FROM assy WHERE assy.obid = 1
   UNION
   SELECT assy.type, assy.obid, assy.name, assy.dec
   FROM rtbl JOIN link ON rtbl.obid = link.left
             JOIN assy ON link.right = assy.obid
   UNION
   SELECT comp.type, comp.obid, comp.name, ''
   FROM rtbl JOIN link ON rtbl.obid = link.left
             JOIN comp ON link.right = comp.obid
   WHERE EXISTS (SELECT * FROM specified_by AS s JOIN spec
                 ON s.right = spec.obid WHERE s.left = comp.obid))
SELECT type, obid, name FROM rtbl ORDER BY 1, 2
)sql");
  ASSERT_TRUE(result.ok()) << result.status();
  // 5 assemblies + exactly one surviving component.
  ASSERT_EQ(result->num_rows(), 6u);
  EXPECT_EQ(result->At(5, 0).string_value(), "comp");
  EXPECT_EQ(result->At(5, 1).int64_value(), 103);
}

TEST(Engine, UpdateAndDeleteWork) {
  Database db;
  BuildPaperExample(&db);
  ResultSet rs;
  ASSERT_TRUE(
      db.Execute("UPDATE assy SET dec = '+' WHERE obid >= 5", &rs).ok());
  EXPECT_EQ(rs.affected_rows, 4u);
  Result<ResultSet> count =
      db.Query("SELECT COUNT(*) FROM assy WHERE dec = '+'");
  ASSERT_TRUE(count.ok()) << count.status();
  EXPECT_EQ(count->At(0, 0).int64_value(), 8);

  ASSERT_TRUE(db.Execute("DELETE FROM comp WHERE obid > 104", &rs).ok());
  EXPECT_EQ(rs.affected_rows, 3u);
  count = db.Query("SELECT COUNT(*) FROM comp");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->At(0, 0).int64_value(), 4);
}

TEST(Engine, StoredProcedureRoundTrip) {
  Database db;
  BuildPaperExample(&db);
  ASSERT_TRUE(db.RegisterProcedure(
                    "count_assy",
                    [](Database& inner, const std::vector<Value>& args,
                       ResultSet* out) -> Status {
                      EXPECT_EQ(args.size(), 1u);
                      return inner.Execute(
                          "SELECT COUNT(*) FROM assy WHERE dec = " +
                              args[0].ToSqlLiteral(),
                          out);
                    })
                  .ok());
  ResultSet rs;
  ASSERT_TRUE(db.Execute("CALL count_assy('+')", &rs).ok());
  EXPECT_EQ(rs.At(0, 0).int64_value(), 4);
}

}  // namespace
}  // namespace pdm
