// Unit tests for the SQL lexer.

#include <gtest/gtest.h>

#include "sql/lexer.h"

namespace pdm::sql {
namespace {

std::vector<Token> MustLex(std::string_view input) {
  Result<std::vector<Token>> tokens = TokenizeSql(input);
  EXPECT_TRUE(tokens.ok()) << tokens.status();
  return std::move(tokens).ValueOr({});
}

TEST(Lexer, EmptyInputYieldsEnd) {
  std::vector<Token> tokens = MustLex("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kEnd);
}

TEST(Lexer, KeywordsAreUppercasedAndCaseInsensitive) {
  std::vector<Token> tokens = MustLex("select Select SELECT sElEcT");
  ASSERT_EQ(tokens.size(), 5u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(tokens[i].kind, TokenKind::kKeyword);
    EXPECT_EQ(tokens[i].text, "SELECT");
  }
}

TEST(Lexer, NonReservedWordsAreIdentifiers) {
  // LEFT/RIGHT/TYPE/DEC are column names in the paper's schema and must
  // not be reserved.
  std::vector<Token> tokens = MustLex("left right type dec count sum");
  for (size_t i = 0; i + 1 < tokens.size(); ++i) {
    EXPECT_EQ(tokens[i].kind, TokenKind::kIdentifier) << i;
  }
}

TEST(Lexer, IntegerLiterals) {
  std::vector<Token> tokens = MustLex("0 42 123456789012");
  EXPECT_EQ(tokens[0].int_value, 0);
  EXPECT_EQ(tokens[1].int_value, 42);
  EXPECT_EQ(tokens[2].int_value, 123456789012LL);
  EXPECT_EQ(tokens[2].kind, TokenKind::kIntegerLiteral);
}

TEST(Lexer, DoubleLiterals) {
  std::vector<Token> tokens = MustLex("4.2 .5 1e3 1.5e-2 2E+4");
  EXPECT_DOUBLE_EQ(tokens[0].double_value, 4.2);
  EXPECT_DOUBLE_EQ(tokens[1].double_value, 0.5);
  EXPECT_DOUBLE_EQ(tokens[2].double_value, 1000.0);
  EXPECT_DOUBLE_EQ(tokens[3].double_value, 0.015);
  EXPECT_DOUBLE_EQ(tokens[4].double_value, 20000.0);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(tokens[i].kind, TokenKind::kDoubleLiteral) << i;
  }
}

TEST(Lexer, StringLiteralsWithEscapedQuotes) {
  std::vector<Token> tokens = MustLex("'abc' '' 'it''s'");
  EXPECT_EQ(tokens[0].text, "abc");
  EXPECT_EQ(tokens[1].text, "");
  EXPECT_EQ(tokens[2].text, "it's");
}

TEST(Lexer, QuotedIdentifiers) {
  std::vector<Token> tokens = MustLex("\"DEC\" \"EFF_FROM\"");
  EXPECT_EQ(tokens[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ(tokens[0].text, "DEC");
  EXPECT_EQ(tokens[1].text, "EFF_FROM");
}

TEST(Lexer, DollarIdentifiers) {
  // The rule layer's $user placeholder.
  std::vector<Token> tokens = MustLex("$user.strc_opt");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ(tokens[0].text, "$user");
  EXPECT_EQ(tokens[1].kind, TokenKind::kDot);
  EXPECT_EQ(tokens[2].text, "strc_opt");
}

TEST(Lexer, Operators) {
  std::vector<Token> tokens = MustLex("= <> != < <= > >= + - * / % || ( ) , . ;");
  TokenKind expected[] = {
      TokenKind::kEq,      TokenKind::kNotEq,     TokenKind::kNotEq,
      TokenKind::kLess,    TokenKind::kLessEq,    TokenKind::kGreater,
      TokenKind::kGreaterEq, TokenKind::kPlus,    TokenKind::kMinus,
      TokenKind::kStar,    TokenKind::kSlash,     TokenKind::kPercent,
      TokenKind::kConcat,  TokenKind::kLeftParen, TokenKind::kRightParen,
      TokenKind::kComma,   TokenKind::kDot,       TokenKind::kSemicolon,
  };
  ASSERT_GE(tokens.size(), std::size(expected));
  for (size_t i = 0; i < std::size(expected); ++i) {
    EXPECT_EQ(tokens[i].kind, expected[i]) << i;
  }
}

TEST(Lexer, LineAndBlockComments) {
  std::vector<Token> tokens = MustLex(
      "SELECT -- this is a comment\n 1 /* block\ncomment */ + 2");
  ASSERT_EQ(tokens.size(), 5u);  // SELECT 1 + 2 END
  EXPECT_EQ(tokens[1].int_value, 1);
  EXPECT_EQ(tokens[2].kind, TokenKind::kPlus);
  EXPECT_EQ(tokens[3].int_value, 2);
}

TEST(Lexer, TracksLineAndColumn) {
  std::vector<Token> tokens = MustLex("SELECT\n  foo");
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[0].column, 1);
  EXPECT_EQ(tokens[1].line, 2);
  EXPECT_EQ(tokens[1].column, 3);
}

TEST(Lexer, ErrorsOnUnterminatedString) {
  Result<std::vector<Token>> result = TokenizeSql("'never closed");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kParseError);
}

TEST(Lexer, ErrorsOnUnterminatedQuotedIdentifier) {
  Result<std::vector<Token>> result = TokenizeSql("\"never closed");
  ASSERT_FALSE(result.ok());
}

TEST(Lexer, ErrorsOnStrayCharacters) {
  EXPECT_FALSE(TokenizeSql("SELECT #").ok());
  EXPECT_FALSE(TokenizeSql("a ! b").ok());
  EXPECT_FALSE(TokenizeSql("a | b").ok());
}

TEST(Lexer, KeywordPredicate) {
  EXPECT_TRUE(IsReservedKeyword("select"));
  EXPECT_TRUE(IsReservedKeyword("RECURSIVE"));
  EXPECT_TRUE(IsReservedKeyword("Between"));
  EXPECT_FALSE(IsReservedKeyword("left"));
  EXPECT_FALSE(IsReservedKeyword("count"));
  EXPECT_FALSE(IsReservedKeyword("rtbl"));
}

}  // namespace
}  // namespace pdm::sql
