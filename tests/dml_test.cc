// Tests for DDL and DML statements through the engine.

#include <gtest/gtest.h>

#include "engine/database.h"

namespace pdm {
namespace {

class DmlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.ExecuteScript(R"sql(
      CREATE TABLE t (id INTEGER, name VARCHAR, score DOUBLE);
      INSERT INTO t VALUES (1, 'a', 1.0), (2, 'b', 2.0), (3, 'c', 3.0);
    )sql")
                    .ok());
  }

  Database db_;
};

TEST_F(DmlTest, CreateTableDuplicates) {
  EXPECT_EQ(db_.Execute("CREATE TABLE t (x INTEGER)").code(),
            StatusCode::kAlreadyExists);
  EXPECT_TRUE(db_.Execute("CREATE TABLE IF NOT EXISTS t (x INTEGER)").ok());
}

TEST_F(DmlTest, DropTable) {
  EXPECT_TRUE(db_.Execute("DROP TABLE t").ok());
  EXPECT_EQ(db_.Execute("DROP TABLE t").code(), StatusCode::kNotFound);
  EXPECT_TRUE(db_.Execute("DROP TABLE IF EXISTS t").ok());
  EXPECT_FALSE(db_.Query("SELECT * FROM t").ok());
}

TEST_F(DmlTest, InsertWithColumnListAndDefaults) {
  ResultSet rs;
  ASSERT_TRUE(db_.Execute("INSERT INTO t (name, id) VALUES ('d', 4)", &rs)
                  .ok());
  EXPECT_EQ(rs.affected_rows, 1u);
  Result<ResultSet> row = db_.Query("SELECT score FROM t WHERE id = 4");
  ASSERT_TRUE(row.ok());
  EXPECT_TRUE(row->At(0, 0).is_null());  // unmentioned column = NULL
}

TEST_F(DmlTest, InsertTypeMismatchRejected) {
  EXPECT_FALSE(db_.Execute("INSERT INTO t VALUES ('x', 'a', 1.0)").ok());
  EXPECT_FALSE(db_.Execute("INSERT INTO t (id) VALUES (1, 2)").ok());
  EXPECT_FALSE(db_.Execute("INSERT INTO t (nosuch) VALUES (1)").ok());
}

TEST_F(DmlTest, InsertIntWidensIntoDoubleColumn) {
  EXPECT_TRUE(db_.Execute("INSERT INTO t VALUES (9, 'i', 7)").ok());
  Result<ResultSet> row = db_.Query("SELECT score FROM t WHERE id = 9");
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row->At(0, 0).int64_value(), 7);
}

TEST_F(DmlTest, UpdateSeesOldValuesUniformly) {
  // A self-referencing update must not observe its own writes: swap-like
  // behaviour of SET over the old row.
  ResultSet rs;
  ASSERT_TRUE(db_.Execute("UPDATE t SET id = id + 1", &rs).ok());
  EXPECT_EQ(rs.affected_rows, 3u);
  Result<ResultSet> ids = db_.Query("SELECT id FROM t ORDER BY 1");
  EXPECT_EQ(ids->At(0, 0).int64_value(), 2);
  EXPECT_EQ(ids->At(2, 0).int64_value(), 4);
}

TEST_F(DmlTest, UpdateWithSubqueryPredicate) {
  ASSERT_TRUE(db_.ExecuteScript(R"sql(
    CREATE TABLE chosen (id INTEGER);
    INSERT INTO chosen VALUES (1), (3);
  )sql")
                  .ok());
  ResultSet rs;
  ASSERT_TRUE(db_.Execute(
                    "UPDATE t SET name = 'picked' WHERE id IN "
                    "(SELECT id FROM chosen)",
                    &rs)
                  .ok());
  EXPECT_EQ(rs.affected_rows, 2u);
}

TEST_F(DmlTest, UpdateTypeViolationRejectedBeforeApplying) {
  Status bad = db_.Execute("UPDATE t SET id = 'oops'");
  EXPECT_FALSE(bad.ok());
  // Nothing was applied.
  Result<ResultSet> rs = db_.Query("SELECT COUNT(*) FROM t WHERE id = 1");
  EXPECT_EQ(rs->At(0, 0).int64_value(), 1);
}

TEST_F(DmlTest, DeleteWithAndWithoutPredicate) {
  ResultSet rs;
  ASSERT_TRUE(db_.Execute("DELETE FROM t WHERE id > 1", &rs).ok());
  EXPECT_EQ(rs.affected_rows, 2u);
  ASSERT_TRUE(db_.Execute("DELETE FROM t", &rs).ok());
  EXPECT_EQ(rs.affected_rows, 1u);
  EXPECT_EQ(db_.Query("SELECT COUNT(*) FROM t")->At(0, 0).int64_value(), 0);
}

TEST_F(DmlTest, LargeInListUsesHashedLookup) {
  // Correctness of the literal-set fast path under many items.
  std::string sql = "DELETE FROM t WHERE id IN (";
  for (int i = 0; i < 500; ++i) {
    if (i > 0) sql += ",";
    sql += std::to_string(i * 2);  // even numbers only
  }
  sql += ")";
  ResultSet rs;
  ASSERT_TRUE(db_.Execute(sql, &rs).ok());
  EXPECT_EQ(rs.affected_rows, 1u);  // only id=2 is even
}

TEST_F(DmlTest, ProceduresAndErrors) {
  ASSERT_TRUE(db_.RegisterProcedure(
                    "add_row",
                    [](Database& inner, const std::vector<Value>& args,
                       ResultSet* out) -> Status {
                      (void)out;
                      return inner.Execute(
                          "INSERT INTO t VALUES (" + args[0].ToSqlLiteral() +
                          ", 'proc', 0.0)");
                    })
                  .ok());
  ASSERT_TRUE(db_.Execute("CALL add_row(42)").ok());
  EXPECT_EQ(
      db_.Query("SELECT COUNT(*) FROM t WHERE id = 42")->At(0, 0).int64_value(),
      1);
  EXPECT_EQ(db_.Execute("CALL nosuch()").code(), StatusCode::kNotFound);
  Status dup = db_.RegisterProcedure(
      "ADD_ROW", [](Database&, const std::vector<Value>&, ResultSet*) {
        return Status::OK();
      });
  EXPECT_EQ(dup.code(), StatusCode::kAlreadyExists);
}

// Regression: the lazy column index over link.left used to survive DML
// unrefreshed, so children inserted after an indexed expand were
// invisible to later expands of the same parent.
TEST_F(DmlTest, IndexSeesRowsInsertedAfterBuild) {
  ASSERT_TRUE(db_.ExecuteScript(R"sql(
    CREATE TABLE link (left INTEGER, right INTEGER, hier VARCHAR);
    INSERT INTO link VALUES (1, 10, 'part-of'), (1, 11, 'part-of'),
                            (2, 20, 'part-of');
  )sql")
                  .ok());
  // Warm up the demand counter (the first lookup on a never-indexed
  // column runs vectorized), then expand: the repeat builds the lazy
  // index over link.left.
  ASSERT_TRUE(db_.Query("SELECT right FROM link WHERE left = 1").ok());
  Result<ResultSet> kids =
      db_.Query("SELECT right FROM link WHERE left = 1 ORDER BY 1");
  ASSERT_TRUE(kids.ok());
  EXPECT_EQ(kids->num_rows(), 2u);
  EXPECT_GT(db_.last_stats().index_scans, 0u);

  // Attach a new child after the index exists: it must be found.
  ASSERT_TRUE(db_.Execute("INSERT INTO link VALUES (1, 12, 'part-of')").ok());
  kids = db_.Query("SELECT right FROM link WHERE left = 1 ORDER BY 1");
  ASSERT_TRUE(kids.ok());
  ASSERT_EQ(kids->num_rows(), 3u);
  EXPECT_EQ(kids->At(2, 0).int64_value(), 12);
  EXPECT_GT(db_.last_stats().index_scans, 0u);  // still on the index path
}

TEST_F(DmlTest, IndexInvalidatedByUpdateAndDelete) {
  ASSERT_TRUE(db_.ExecuteScript(R"sql(
    CREATE TABLE link (left INTEGER, right INTEGER);
    INSERT INTO link VALUES (1, 10), (1, 11), (2, 20);
  )sql")
                  .ok());
  EXPECT_EQ(db_.Query("SELECT right FROM link WHERE left = 1")->num_rows(),
            2u);

  // Re-parent one child; the indexed expand must see the move.
  ASSERT_TRUE(db_.Execute("UPDATE link SET left = 2 WHERE right = 11").ok());
  EXPECT_EQ(db_.Query("SELECT right FROM link WHERE left = 1")->num_rows(),
            1u);
  EXPECT_EQ(db_.Query("SELECT right FROM link WHERE left = 2")->num_rows(),
            2u);

  ASSERT_TRUE(db_.Execute("DELETE FROM link WHERE right = 20").ok());
  EXPECT_EQ(db_.Query("SELECT right FROM link WHERE left = 2")->num_rows(),
            1u);
}

TEST_F(DmlTest, ScriptStopsAtFirstError) {
  Status status = db_.ExecuteScript(
      "INSERT INTO t VALUES (7, 'x', 0.0);"
      "INSERT INTO nosuch VALUES (1);"
      "INSERT INTO t VALUES (8, 'y', 0.0)");
  EXPECT_FALSE(status.ok());
  // The first insert ran, the third did not.
  EXPECT_EQ(
      db_.Query("SELECT COUNT(*) FROM t WHERE id IN (7, 8)")->At(0, 0)
          .int64_value(),
      1);
}

}  // namespace
}  // namespace pdm
