// Tests for the product generator: determinism, shape invariants, σ
// realization, link calibration — including parameterized sweeps over
// the (α, ω, σ) space.

#include <gtest/gtest.h>

#include "engine/database.h"
#include "common/string_util.h"
#include "pdm/generator.h"
#include "pdm/pdm_schema.h"

namespace pdm::pdmsys {
namespace {

GeneratedProduct MustGenerate(Database* db, const GeneratorConfig& config) {
  Result<GeneratedProduct> product = GenerateProduct(db, config);
  EXPECT_TRUE(product.ok()) << product.status();
  return std::move(product).ValueOr(GeneratedProduct{});
}

TEST(Generator, RejectsBadParameters) {
  Database db;
  GeneratorConfig config;
  config.depth = 0;
  EXPECT_FALSE(GenerateProduct(&db, config).ok());
  config.depth = 2;
  config.sigma = 1.5;
  EXPECT_FALSE(GenerateProduct(&db, config).ok());
}

TEST(Generator, DeterministicForSameSeed) {
  GeneratorConfig config;
  config.depth = 3;
  config.branching = 4;
  config.seed = 99;
  Database db1;
  Database db2;
  GeneratedProduct p1 = MustGenerate(&db1, config);
  GeneratedProduct p2 = MustGenerate(&db2, config);
  EXPECT_EQ(p1.visible_nodes, p2.visible_nodes);
  Result<ResultSet> a = db1.Query("SELECT * FROM assy ORDER BY 2");
  Result<ResultSet> b = db2.Query("SELECT * FROM assy ORDER BY 2");
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->num_rows(), b->num_rows());
  for (size_t i = 0; i < a->num_rows(); ++i) {
    EXPECT_TRUE(RowsEqual(a->rows[i], b->rows[i])) << i;
  }
}

TEST(Generator, LinkAttributesCalibratedToVisibility) {
  Database db;
  GeneratorConfig config;
  config.depth = 3;
  config.branching = 4;
  config.sigma = 0.5;
  GeneratedProduct product = MustGenerate(&db, config);

  // Every link whose endpoints are both visible must pass the user's
  // effectivity window and option mask; children marked invisible under
  // a visible parent must fail one of the two.
  std::string probe = StrFormat(
      "SELECT COUNT(*) FROM link JOIN assy ON link.left = assy.obid "
      "JOIN comp ON link.right = comp.obid "
      "WHERE assy.acc = '+' AND comp.acc = '+' "
      "AND NOT (link.eff_from <= %lld AND link.eff_to >= %lld "
      "AND BITAND(link.strc_opt, %lld) <> 0)",
      static_cast<long long>(config.user.eff_to),
      static_cast<long long>(config.user.eff_from),
      static_cast<long long>(config.user.strc_opt));
  Result<ResultSet> bad = db.Query(probe);
  ASSERT_TRUE(bad.ok()) << bad.status();
  EXPECT_EQ(bad->At(0, 0).int64_value(), 0);
  EXPECT_GT(product.visible_nodes, 0u);
}

TEST(Generator, AppendsSecondProductWithFreshIds) {
  Database db;
  GeneratorConfig config;
  config.depth = 2;
  config.branching = 2;
  GeneratedProduct first = MustGenerate(&db, config);
  GeneratedProduct second = MustGenerate(&db, config);
  EXPECT_NE(first.root_obid, second.root_obid);
  Result<ResultSet> dups = db.Query(
      "SELECT obid, COUNT(*) FROM assy GROUP BY obid HAVING COUNT(*) > 1");
  ASSERT_TRUE(dups.ok());
  EXPECT_EQ(dups->num_rows(), 0u);
}

TEST(Generator, SpecsAttachOnlyToComponents) {
  Database db;
  GeneratorConfig config;
  config.depth = 3;
  config.branching = 3;
  config.spec_fraction = 1.0;
  GeneratedProduct product = MustGenerate(&db, config);
  EXPECT_EQ(product.num_specs, product.num_components);
  Result<ResultSet> orphans = db.Query(
      "SELECT COUNT(*) FROM specified_by WHERE left NOT IN "
      "(SELECT obid FROM comp)");
  ASSERT_TRUE(orphans.ok());
  EXPECT_EQ(orphans->At(0, 0).int64_value(), 0);
}

// --- Parameterized sweep over tree shapes -----------------------------------

struct ShapeCase {
  int depth;
  int branching;
  double sigma;
};

class GeneratorShapeSweep : public ::testing::TestWithParam<ShapeCase> {};

TEST_P(GeneratorShapeSweep, ShapeInvariantsHold) {
  const ShapeCase& param = GetParam();
  Database db;
  GeneratorConfig config;
  config.depth = param.depth;
  config.branching = param.branching;
  config.sigma = param.sigma;
  GeneratedProduct product = MustGenerate(&db, config);

  // Complete ω-ary tree arithmetic.
  size_t expected_nodes = 0;
  size_t level = 1;
  for (int i = 1; i <= param.depth; ++i) {
    level *= static_cast<size_t>(param.branching);
    expected_nodes += level;
  }
  EXPECT_EQ(product.total_nodes, expected_nodes);
  EXPECT_EQ(product.total_links, expected_nodes);
  EXPECT_EQ(product.num_assemblies + product.num_components,
            expected_nodes + 1);
  // Leaves are components, internals assemblies.
  EXPECT_EQ(product.num_components, level);

  // Visibility never exceeds the level population, composes downward,
  // and is within ±1 per level of the σ expectation for error diffusion.
  double expectation = 1;
  for (int i = 1; i <= param.depth; ++i) {
    size_t vis = product.visible_per_level[static_cast<size_t>(i)];
    EXPECT_LE(vis, product.nodes_per_level[static_cast<size_t>(i)]);
    expectation = product.visible_per_level[static_cast<size_t>(i - 1)] *
                  param.sigma * param.branching;
    if (i == 1) expectation = param.sigma * param.branching;
    EXPECT_NEAR(static_cast<double>(vis), expectation, 1.0)
        << "level " << i;
  }

  // The database tables agree with the summary counts.
  EXPECT_EQ(static_cast<size_t>(
                db.Query("SELECT COUNT(*) FROM assy")->At(0, 0).int64_value()),
            product.num_assemblies);
  EXPECT_EQ(static_cast<size_t>(
                db.Query("SELECT COUNT(*) FROM comp")->At(0, 0).int64_value()),
            product.num_components);
  EXPECT_EQ(static_cast<size_t>(
                db.Query("SELECT COUNT(*) FROM link")->At(0, 0).int64_value()),
            product.total_links);
  // acc flags match the visible count (+1 for the root).
  int64_t acc_plus =
      db.Query("SELECT COUNT(*) FROM assy WHERE acc = '+'")->At(0, 0)
          .int64_value() +
      db.Query("SELECT COUNT(*) FROM comp WHERE acc = '+'")->At(0, 0)
          .int64_value();
  EXPECT_EQ(static_cast<size_t>(acc_plus), product.visible_nodes + 1);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GeneratorShapeSweep,
    ::testing::Values(ShapeCase{1, 1, 1.0}, ShapeCase{1, 8, 0.5},
                      ShapeCase{2, 3, 0.0}, ShapeCase{3, 4, 0.5},
                      ShapeCase{3, 9, 0.6}, ShapeCase{4, 3, 0.33},
                      ShapeCase{5, 2, 0.8}, ShapeCase{6, 2, 1.0},
                      ShapeCase{2, 10, 0.25}),
    [](const ::testing::TestParamInfo<ShapeCase>& info) {
      return "d" + std::to_string(info.param.depth) + "b" +
             std::to_string(info.param.branching) + "s" +
             std::to_string(static_cast<int>(info.param.sigma * 100));
    });

TEST(Generator, BernoulliModeApproximatesSigma) {
  Database db;
  GeneratorConfig config;
  config.depth = 2;
  config.branching = 40;  // 1640 links
  config.sigma = 0.5;
  config.sigma_mode = GeneratorConfig::SigmaMode::kBernoulli;
  config.seed = 4;
  GeneratedProduct product = MustGenerate(&db, config);
  double level1 = static_cast<double>(product.visible_per_level[1]);
  EXPECT_NEAR(level1 / 40.0, 0.5, 0.2);
}

}  // namespace
}  // namespace pdm::pdmsys
