// Tests for the client-side product tree and homogenized reassembly.

#include <gtest/gtest.h>

#include "pdm/product_tree.h"

namespace pdm::pdmsys {
namespace {

Schema HomogenizedSchema() {
  return Schema({{"type", ColumnType::kString},
                 {"obid", ColumnType::kInt64},
                 {"name", ColumnType::kString},
                 {"LEFT", ColumnType::kInt64},
                 {"RIGHT", ColumnType::kInt64}});
}

Row ObjectRow(const char* type, int64_t obid, const char* name) {
  return Row{Value::String(type), Value::Int64(obid), Value::String(name),
             Value::Null(), Value::Null()};
}

Row LinkRow(int64_t obid, int64_t left, int64_t right) {
  return Row{Value::String("link"), Value::Int64(obid), Value::String(""),
             Value::Int64(left), Value::Int64(right)};
}

TEST(ProductTree, AddNodeBuildsParentChildLinks) {
  ProductTree tree;
  size_t root = tree.AddNode(1, "assy", "Root", std::nullopt);
  size_t child = tree.AddNode(2, "comp", "Leaf", root);
  EXPECT_EQ(tree.num_nodes(), 2u);
  EXPECT_EQ(tree.node(root).children.size(), 1u);
  EXPECT_EQ(tree.node(child).parent, root);
  EXPECT_EQ(tree.Depth(), 1u);
}

TEST(ProductTree, DuplicateObidsAreIdempotent) {
  ProductTree tree;
  size_t root = tree.AddNode(1, "assy", "Root", std::nullopt);
  size_t again = tree.AddNode(1, "assy", "Root", std::nullopt);
  EXPECT_EQ(root, again);
  EXPECT_EQ(tree.num_nodes(), 1u);
}

TEST(ProductTree, FindByObid) {
  ProductTree tree;
  tree.AddNode(42, "assy", "X", std::nullopt);
  EXPECT_TRUE(tree.FindByObid(42).has_value());
  EXPECT_FALSE(tree.FindByObid(43).has_value());
}

TEST(ProductTree, AssembleFromHomogenizedRows) {
  ResultSet rs;
  rs.schema = HomogenizedSchema();
  rs.rows = {
      ObjectRow("assy", 1, "Root"),  ObjectRow("assy", 2, "Sub"),
      ObjectRow("comp", 101, "C1"),  ObjectRow("comp", 102, "C2"),
      LinkRow(1001, 1, 2),           LinkRow(1002, 2, 101),
      LinkRow(1003, 2, 102),
  };
  Result<ProductTree> tree = AssembleFromHomogenized(rs, 1);
  ASSERT_TRUE(tree.ok()) << tree.status();
  EXPECT_EQ(tree->num_nodes(), 4u);
  EXPECT_EQ(tree->Depth(), 2u);
  size_t sub = *tree->FindByObid(2);
  EXPECT_EQ(tree->node(sub).children.size(), 2u);
}

TEST(ProductTree, AssembleIgnoresEdgesToFilteredObjects) {
  // A link whose child object was filtered out (rule) must not create a
  // node.
  ResultSet rs;
  rs.schema = HomogenizedSchema();
  rs.rows = {
      ObjectRow("assy", 1, "Root"),
      LinkRow(1001, 1, 99),  // object 99 absent
  };
  Result<ProductTree> tree = AssembleFromHomogenized(rs, 1);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->num_nodes(), 1u);
}

TEST(ProductTree, AssembleIgnoresUnreachableIslands) {
  ResultSet rs;
  rs.schema = HomogenizedSchema();
  rs.rows = {
      ObjectRow("assy", 1, "Root"),
      ObjectRow("assy", 7, "Island"),
  };
  Result<ProductTree> tree = AssembleFromHomogenized(rs, 1);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->num_nodes(), 1u);
}

TEST(ProductTree, EmptyResultYieldsEmptyTree) {
  ResultSet rs;
  rs.schema = HomogenizedSchema();
  Result<ProductTree> tree = AssembleFromHomogenized(rs, 1);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->num_nodes(), 0u);
}

TEST(ProductTree, MissingRootIsAnError) {
  ResultSet rs;
  rs.schema = HomogenizedSchema();
  rs.rows = {ObjectRow("assy", 2, "NotRoot")};
  EXPECT_FALSE(AssembleFromHomogenized(rs, 1).ok());
}

TEST(ProductTree, MissingColumnsRejected) {
  ResultSet rs;
  rs.schema = Schema({{"type", ColumnType::kString}});
  rs.rows = {};
  Result<ProductTree> tree = AssembleFromHomogenized(rs, 1);
  ASSERT_FALSE(tree.ok());
  EXPECT_EQ(tree.status().code(), StatusCode::kInvalidArgument);
}

TEST(ProductTree, ToStringShowsHierarchy) {
  ProductTree tree;
  size_t root = tree.AddNode(1, "assy", "Root", std::nullopt);
  tree.AddNode(2, "comp", "Leaf", root);
  std::string text = tree.ToString();
  EXPECT_NE(text.find("assy 1 (Root)"), std::string::npos);
  EXPECT_NE(text.find("  comp 2 (Leaf)"), std::string::npos);
}

TEST(ProductTree, SharedChildAttachesToFirstParentSeen) {
  // The flat representation allows DAG-shaped usage (a part used in two
  // assemblies). The tree view keeps one placement; the node count must
  // not double.
  ResultSet rs;
  rs.schema = HomogenizedSchema();
  rs.rows = {
      ObjectRow("assy", 1, "Root"), ObjectRow("assy", 2, "A"),
      ObjectRow("assy", 3, "B"),    ObjectRow("comp", 101, "Shared"),
      LinkRow(1001, 1, 2),          LinkRow(1002, 1, 3),
      LinkRow(1003, 2, 101),        LinkRow(1004, 3, 101),
  };
  Result<ProductTree> tree = AssembleFromHomogenized(rs, 1);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->num_nodes(), 4u);
}

}  // namespace
}  // namespace pdm::pdmsys
