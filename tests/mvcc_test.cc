// Tests for MVCC snapshot reads (DESIGN.md 5h): snapshot isolation
// across UPDATE at the engine level, deterministic first-writer-wins
// conflicts with full statement rollback, version-GC defer/prune
// behaviour, conflict surfacing through mixed reader/writer waves, the
// concurrent check-out workload driver (byte-identical reader trees,
// server/client conflict counter reconciliation), a table-level
// snapshot-stability stress that doubles as a TSan canary, and
// vectorized visibility over the columnar fragments (version chains
// crossing the fragment boundary, concurrent fragment scans).

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "catalog/table.h"
#include "client/experiment.h"
#include "common/status.h"
#include "engine/database.h"
#include "exec/vec_batch.h"
#include "obs/metrics.h"
#include "server/admission_queue.h"
#include "server/db_server.h"

namespace pdm {
namespace {

using model::ActionKind;
using model::StrategyKind;

uint64_t CounterValue(const char* name) {
  return obs::MetricsRegistry::Global().counter(name).value();
}

TEST(MvccEngine, PinnedSnapshotSeesPreUpdateRows) {
  Database db;
  ASSERT_TRUE(db.ExecuteScript(R"sql(
    CREATE TABLE t (id INTEGER, name VARCHAR);
    INSERT INTO t VALUES (1, 'old'), (2, 'old');
  )sql")
                  .ok());

  Database::Snapshot snap = db.AcquireSnapshot();
  ASSERT_TRUE(snap.valid());

  ResultSet ack;
  ASSERT_TRUE(
      db.Execute("UPDATE t SET name = 'new' WHERE id = 1", &ack).ok());
  EXPECT_EQ(ack.affected_rows, 1u);

  // The snapshot predates the UPDATE's commit: reads against it keep
  // seeing the old values while a fresh read sees the new ones.
  ExecStats stats;
  ResultSet pinned;
  ASSERT_TRUE(db.Execute("SELECT name FROM t WHERE id = 1", &pinned, &stats,
                         snap.ts())
                  .ok());
  ASSERT_EQ(pinned.num_rows(), 1u);
  EXPECT_EQ(pinned.At(0, 0).ToString(), "old");

  ResultSet latest;
  ASSERT_TRUE(
      db.Execute("SELECT name FROM t WHERE id = 1", &latest, &stats).ok());
  ASSERT_EQ(latest.num_rows(), 1u);
  EXPECT_EQ(latest.At(0, 0).ToString(), "new");
}

TEST(MvccEngine, StaleSnapshotUpdateLosesFirstWriterWinsAndRollsBack) {
  Database db;
  ASSERT_TRUE(db.ExecuteScript(R"sql(
    CREATE TABLE t (id INTEGER, name VARCHAR);
    INSERT INTO t VALUES (1, 'old'), (2, 'old');
  )sql")
                  .ok());
  const uint64_t conflicts_before = CounterValue("mvcc.write_conflicts");

  // A snapshot taken now becomes stale the moment the first writer
  // commits — replaying the race deterministically.
  const uint64_t stale_ts = db.commit_clock();
  ExecStats stats;
  ResultSet ack;
  ASSERT_TRUE(
      db.Execute("UPDATE t SET name = 'first' WHERE id = 1", &ack, &stats)
          .ok());
  EXPECT_EQ(ack.affected_rows, 1u);

  // The second UPDATE targets ALL rows at the stale snapshot. Row 1's
  // version is already killed, so the whole statement must lose and
  // roll back — row 2 untouched despite matching.
  ResultSet out;
  Status lost =
      db.Execute("UPDATE t SET name = 'second'", &out, &stats, stale_ts);
  EXPECT_EQ(lost.code(), StatusCode::kWriteConflict);
  EXPECT_TRUE(IsRetryableConflict(lost.code()));
  EXPECT_EQ(CounterValue("mvcc.write_conflicts"), conflicts_before + 1);

  Result<ResultSet> names = db.Query("SELECT id, name FROM t ORDER BY 1");
  ASSERT_TRUE(names.ok()) << names.status();
  ASSERT_EQ(names->num_rows(), 2u);
  EXPECT_EQ(names->At(0, 1).ToString(), "first");
  EXPECT_EQ(names->At(1, 1).ToString(), "old");

  // A retry at a fresh snapshot succeeds — the conflict is transient.
  ASSERT_TRUE(
      db.Execute("UPDATE t SET name = 'second'", &out, &stats).ok());
  EXPECT_EQ(out.affected_rows, 2u);
}

TEST(MvccEngine, GcDefersUnderActiveSnapshotAndPrunesOnlyDead) {
  Database db;
  ASSERT_TRUE(db.ExecuteScript(R"sql(
    CREATE TABLE t (id INTEGER, name VARCHAR);
    INSERT INTO t VALUES (1, 'a'), (2, 'b'), (3, 'c'), (4, 'd');
  )sql")
                  .ok());
  // One UPDATE over all rows: 4 dead versions + 4 live successors.
  ASSERT_TRUE(db.Execute("UPDATE t SET name = 'u'").ok());

  const uint64_t deferred_before = CounterValue("mvcc.gc_deferred");
  const uint64_t runs_before = CounterValue("mvcc.gc_runs");
  const uint64_t pruned_before = CounterValue("mvcc.versions_pruned");

  {
    Database::Snapshot snap = db.AcquireSnapshot();
    ASSERT_TRUE(snap.valid());
    // A live snapshot pins the dead versions: GC must defer, not block.
    EXPECT_EQ(db.GarbageCollectVersions(), 0u);
    EXPECT_EQ(CounterValue("mvcc.gc_deferred"), deferred_before + 1);
    EXPECT_EQ(CounterValue("mvcc.gc_runs"), runs_before);
  }

  Result<ResultSet> before = db.Query("SELECT id, name FROM t ORDER BY id");
  ASSERT_TRUE(before.ok());

  // Snapshot released: GC prunes exactly the 4 dead versions and the
  // latest-visible data is unchanged.
  EXPECT_EQ(db.GarbageCollectVersions(), 4u);
  EXPECT_EQ(CounterValue("mvcc.gc_runs"), runs_before + 1);
  EXPECT_EQ(CounterValue("mvcc.versions_pruned"), pruned_before + 4);

  Result<ResultSet> after = db.Query("SELECT id, name FROM t ORDER BY id");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->ToString(1 << 20), before->ToString(1 << 20));

  // Nothing dead left: a second pass is a no-op AND must leave the
  // fully-live table's row data untouched (regression: the rebuild
  // must not move rows out of versions it then keeps).
  EXPECT_EQ(db.GarbageCollectVersions(), 0u);
  Result<ResultSet> after_noop =
      db.Query("SELECT id, name FROM t ORDER BY id");
  ASSERT_TRUE(after_noop.ok());
  EXPECT_EQ(after_noop->ToString(1 << 20), before->ToString(1 << 20));
}

TEST(MvccWaves, SameWaveUpdatesOnOneRowSurfaceRetryableConflict) {
  DbServer server;
  ASSERT_TRUE(
      server
          .Execute("CREATE TABLE t (id INTEGER, name TEXT)", nullptr, nullptr)
          .ok());
  ASSERT_TRUE(server.Execute("INSERT INTO t VALUES (1, 'n')", nullptr, nullptr)
                  .ok());
  AdmissionQueue& queue = server.admission_queue();
  queue.RegisterClient();
  queue.RegisterClient();

  // Two clients update the same row in the same wave. Both submissions
  // run on the serial writer lane against the wave snapshot; the second
  // finds the version killed and must surface a retryable conflict.
  std::vector<std::string> a_stmts = {"UPDATE t SET name = 'a' WHERE id = 1"};
  std::vector<std::string> b_stmts = {"UPDATE t SET name = 'b' WHERE id = 1"};
  std::vector<DbServer::BatchStatementResult> a, b;
  std::thread ta([&] { a = server.Submit(0, a_stmts); });
  std::thread tb([&] { b = server.Submit(1, b_stmts); });
  ta.join();
  tb.join();
  queue.UnregisterClient();
  queue.UnregisterClient();

  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  const Status& won = a[0].status.ok() ? a[0].status : b[0].status;
  const Status& lost = a[0].status.ok() ? b[0].status : a[0].status;
  EXPECT_TRUE(won.ok());
  EXPECT_EQ(lost.code(), StatusCode::kWriteConflict);
  EXPECT_TRUE(IsRetryableConflict(lost.code()));

  std::vector<AdmissionQueue::WaveLogEntry> waves = queue.wave_log();
  ASSERT_EQ(waves.size(), 1u);
  EXPECT_FALSE(waves[0].read_only);
  EXPECT_EQ(waves[0].dml_statements, 2u);
  EXPECT_EQ(waves[0].conflicts, 1u);
}

/// The concurrent check-out workload (DESIGN.md 5h): 8 readers expand
/// the product while 4 writers cycle check-out/check-in against the
/// same tree. Reader trees must be byte-identical to a quiesced run —
/// check-out flips only `checkedout` flags, which expand queries never
/// read, and every reader statement sees one consistent snapshot. Also
/// a TSan canary for the wave-lane split. Run under
/// -DPDM_THREAD_SANITIZE=ON this exercises snapshot acquisition, the
/// writer lane, conflict rollback and client retry concurrently.
TEST(MvccConcurrent, ReadersSeeQuiescedTreesWhileWritersCycle) {
  client::ExperimentConfig config;
  config.generator.depth = 3;
  config.generator.branching = 4;
  config.generator.sigma = 0.6;
  Result<std::unique_ptr<client::Experiment>> experiment =
      client::Experiment::Create(config);
  ASSERT_TRUE(experiment.ok()) << experiment.status();
  client::Experiment& e = **experiment;

  // Quiesced reference: same action, no writers anywhere.
  Result<client::ActionResult> reference =
      e.RunAction(StrategyKind::kBatchedEarly, ActionKind::kMultiLevelExpand);
  ASSERT_TRUE(reference.ok()) << reference.status();
  const std::string reference_tree = reference->tree.ToString(1 << 20);

  client::ConcurrentDmlOptions options;
  options.readers = 8;
  options.writers = 4;
  options.writer_cycles = 3;
  Result<client::ConcurrentDmlResult> run =
      client::RunConcurrentDmlAction(e, options);
  ASSERT_TRUE(run.ok()) << run.status();

  ASSERT_EQ(run->reader_results.size(), 8u);
  for (const client::ActionResult& r : run->reader_results) {
    EXPECT_EQ(r.tree.ToString(1 << 20), reference_tree);
    EXPECT_EQ(r.visible_nodes, reference->visible_nodes);
  }
  ASSERT_EQ(run->reader_wall_seconds.size(), 8u);
  for (double seconds : run->reader_wall_seconds) {
    EXPECT_GT(seconds, 0.0);
  }

  // Two outcomes (check-out, check-in) per cycle per writer; a denied
  // action is a valid outcome, a hard error would have failed `run`.
  EXPECT_EQ(run->writer_results.size(), 4u * 3u * 2u);
  // The very first check-out wave starts from an all-checked-in tree,
  // so at least one writer's flag UPDATEs went through the waves.
  EXPECT_GT(run->dml_statements, 0u);
  EXPECT_GT(run->waves, 0u);

  // Reconciliation: the server counts one first-writer-wins loss per
  // conflicted execution, the clients one retry per loss — and every
  // chain ended in success (the driver surfaced no hard errors).
  EXPECT_EQ(run->conflicts, run->conflict_retries);
}

/// Table-level snapshot stability: reader threads iterate a fixed
/// snapshot while one writer keeps killing + appending versions. Every
/// read of the snapshot must see exactly the original rows.
TEST(MvccTable, FixedSnapshotIsStableUnderConcurrentWriter) {
  Table table("t", Schema({Column{"id", ColumnType::kInt64},
                           Column{"name", ColumnType::kString}}));
  constexpr int kRows = 256;
  constexpr uint64_t kRounds = 200;
  int64_t expected_sum = 0;
  for (int i = 0; i < kRows; ++i) {
    table.InsertUnchecked({Value::Int64(i), Value::String("v0")});
    expected_sum += i;
  }

  std::atomic<bool> stop{false};
  std::atomic<size_t> failures{0};
  std::vector<std::thread> readers;
  readers.reserve(8);
  for (int r = 0; r < 8; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        size_t count = 0;
        int64_t sum = 0;
        bool originals_only = true;
        table.ForEachVisible(/*ts=*/0, [&](const Row& row) {
          ++count;
          sum += row[0].int64_value();
          if (row[1].string_value() != "v0") originals_only = false;
        });
        if (count != static_cast<size_t>(kRows) || sum != expected_sum ||
            !originals_only) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  // Single writer (the engine's contract): each round kills 16 rows'
  // open versions and appends successors at a fresh timestamp.
  std::thread writer([&] {
    for (uint64_t ts = 1; ts <= kRounds; ++ts) {
      table.UpdateRows(
          [&](const Row& row) {
            return row[0].int64_value() % 16 ==
                   static_cast<int64_t>(ts % 16);
          },
          [&](Row& row) {
            row[1] = Value::String("v" + std::to_string(ts));
          },
          ts);
    }
  });
  writer.join();
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(failures.load(), 0u);
  // Updates never change the live row count, and the snapshot at the
  // final clock still holds every logical row.
  EXPECT_EQ(table.num_rows(), static_cast<size_t>(kRows));
  EXPECT_EQ(table.SnapshotRows(kRounds).size(), static_cast<size_t>(kRows));
}

/// Vectorized visibility (DESIGN.md 5i): one row updated until its
/// version chain crosses the 1024-row fragment boundary. Every pinned
/// snapshot must see exactly its version through the batch scan, whose
/// visibility pass walks both fragments (the range predicate keeps the
/// query off the equality-index row path).
TEST(MvccVectorized, VersionChainSpanningAFragmentBoundary) {
  Database db;
  ASSERT_TRUE(db.ExecuteScript(R"sql(
    CREATE TABLE t (id INTEGER, v INTEGER);
    INSERT INTO t VALUES (1, 0);
  )sql")
                  .ok());

  // 1500 UPDATEs -> 1501 versions of the one logical row: fragment 0
  // holds versions 0..1023, fragment 1 the rest. Checkpoints pin the
  // snapshot right before selected commits, on both sides of and at the
  // boundary.
  constexpr int kUpdates = 1500;
  std::vector<std::pair<uint64_t, int64_t>> checkpoints;
  checkpoints.emplace_back(db.commit_clock(), 0);
  for (int i = 1; i <= kUpdates; ++i) {
    ASSERT_TRUE(db.Execute("UPDATE t SET v = v + 1 WHERE id = 1").ok());
    if (i == 1 || i == 700 || i == 1023 || i == 1024 || i == kUpdates) {
      checkpoints.emplace_back(db.commit_clock(), i);
    }
  }

  for (const auto& [ts, expected] : checkpoints) {
    ExecStats stats;
    ResultSet rs;
    ASSERT_TRUE(
        db.Execute("SELECT v FROM t WHERE v >= 0", &rs, &stats, ts).ok());
    ASSERT_EQ(rs.num_rows(), 1u) << "ts=" << ts;
    EXPECT_EQ(rs.At(0, 0).int64_value(), expected) << "ts=" << ts;
    // The whole chain spans two fragments, and only the one visible
    // version enters the selection vector.
    EXPECT_EQ(stats.vec_batches, 2u);
    EXPECT_EQ(stats.vec_rows_scanned, 1u);
    EXPECT_EQ(stats.rows_scanned, 1u);
  }
}

/// TSan canary for the columnar path: readers sweep the fragment
/// directory with FragmentAt + FillVisible (exactly what the batch
/// executor does) while a writer keeps killing + appending versions.
/// A pinned snapshot must keep resolving to the original rows.
TEST(MvccVectorized, FragmentScanStableUnderConcurrentWriter) {
  Table table("t", Schema({Column{"id", ColumnType::kInt64},
                           Column{"name", ColumnType::kString}}));
  constexpr int kRows = 300;  // spills the writer's appends past 1024
  constexpr uint64_t kRounds = 100;
  int64_t expected_sum = 0;
  for (int i = 0; i < kRows; ++i) {
    table.InsertUnchecked({Value::Int64(i), Value::String("v0")});
    expected_sum += i;
  }

  std::atomic<bool> stop{false};
  std::atomic<size_t> failures{0};
  std::vector<std::thread> readers;
  readers.reserve(4);
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      VecBatch batch;
      while (!stop.load(std::memory_order_acquire)) {
        const size_t bound = table.num_versions();
        const size_t frags = (bound + kFragmentRows - 1) >> kFragmentShift;
        size_t count = 0;
        int64_t sum = 0;
        bool originals_only = true;
        for (size_t frag = 0; frag < frags; ++frag) {
          batch.span = table.FragmentAt(frag, bound);
          batch.FillVisible(/*ts=*/0);
          const ColumnSpan ids = batch.span.column(0);
          const ColumnSpan names = batch.span.column(1);
          for (uint32_t slot : batch.sel) {
            ++count;
            sum += static_cast<int64_t>(ids.fixed[slot]);
            if (names.strs[slot] != "v0") originals_only = false;
          }
        }
        if (count != static_cast<size_t>(kRows) || sum != expected_sum ||
            !originals_only) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  std::thread writer([&] {
    for (uint64_t ts = 1; ts <= kRounds; ++ts) {
      table.UpdateRows(
          [&](const Row& row) {
            return row[0].int64_value() % 16 ==
                   static_cast<int64_t>(ts % 16);
          },
          [&](Row& row) {
            row[1] = Value::String("v" + std::to_string(ts));
          },
          ts);
    }
  });
  writer.join();
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_GT(table.num_versions(), static_cast<size_t>(kFragmentRows));
}

}  // namespace
}  // namespace pdm
