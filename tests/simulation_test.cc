// End-to-end tests of the simulated client/server PDM system: the three
// access strategies over a generated product, checked against the
// generator's ground truth and the closed-form cost model.

#include <gtest/gtest.h>

#include "client/experiment.h"

namespace pdm::client {
namespace {

using model::ActionKind;
using model::StrategyKind;

ExperimentConfig SmallConfig() {
  ExperimentConfig config;
  config.generator.depth = 3;
  config.generator.branching = 4;
  config.generator.sigma = 0.5;  // exact under error diffusion: 2 of 4
  config.generator.seed = 7;
  config.wan.latency_s = 0.15;
  config.wan.dtr_kbit = 256;
  return config;
}

TEST(Simulation, GeneratorGroundTruthMatchesShape) {
  ExperimentConfig config = SmallConfig();
  Result<std::unique_ptr<Experiment>> exp = Experiment::Create(config);
  ASSERT_TRUE(exp.ok()) << exp.status();
  const pdmsys::GeneratedProduct& product = (*exp)->product();

  // Complete 4-ary tree of depth 3: 4 + 16 + 64 nodes below the root.
  EXPECT_EQ(product.total_nodes, 84u);
  EXPECT_EQ(product.total_links, 84u);
  EXPECT_EQ(product.num_assemblies, 21u);  // root + levels 1,2
  EXPECT_EQ(product.num_components, 64u);
  // σ=0.5 with error diffusion: exactly 2 of every 4 children visible ⇒
  // visible levels are 2, 4, 8.
  EXPECT_EQ(product.visible_per_level[1], 2u);
  EXPECT_EQ(product.visible_per_level[2], 4u);
  EXPECT_EQ(product.visible_per_level[3], 8u);
  EXPECT_EQ(product.visible_nodes, 14u);
}

TEST(Simulation, RecursiveMleRetrievesExactlyTheVisibleTree) {
  Result<std::unique_ptr<Experiment>> exp =
      Experiment::Create(SmallConfig());
  ASSERT_TRUE(exp.ok()) << exp.status();
  Experiment& e = **exp;

  Result<ActionResult> result =
      e.RunAction(StrategyKind::kRecursive, ActionKind::kMultiLevelExpand);
  ASSERT_TRUE(result.ok()) << result.status();

  EXPECT_EQ(result->visible_nodes, e.product().visible_nodes);
  EXPECT_EQ(result->tree.Depth(), 3u);
  // Exactly one round trip pair for the whole expand.
  EXPECT_EQ(result->wan.round_trips, 1u);
  EXPECT_NEAR(result->wan.latency_seconds, 2 * 0.15, 1e-9);
}

TEST(Simulation, AllThreeStrategiesAgreeOnTheVisibleTree) {
  Result<std::unique_ptr<Experiment>> exp =
      Experiment::Create(SmallConfig());
  ASSERT_TRUE(exp.ok()) << exp.status();
  Experiment& e = **exp;

  Result<ActionResult> late = e.RunAction(StrategyKind::kNavigationalLate,
                                          ActionKind::kMultiLevelExpand);
  Result<ActionResult> early = e.RunAction(StrategyKind::kNavigationalEarly,
                                           ActionKind::kMultiLevelExpand);
  Result<ActionResult> rec =
      e.RunAction(StrategyKind::kRecursive, ActionKind::kMultiLevelExpand);
  ASSERT_TRUE(late.ok()) << late.status();
  ASSERT_TRUE(early.ok()) << early.status();
  ASSERT_TRUE(rec.ok()) << rec.status();

  EXPECT_EQ(late->visible_nodes, e.product().visible_nodes);
  EXPECT_EQ(early->visible_nodes, e.product().visible_nodes);
  EXPECT_EQ(rec->visible_nodes, e.product().visible_nodes);

  // Same set of obids in all three trees.
  for (const pdmsys::ProductNode& node : late->tree.nodes()) {
    EXPECT_TRUE(early->tree.FindByObid(node.obid).has_value());
    EXPECT_TRUE(rec->tree.FindByObid(node.obid).has_value());
  }
}

TEST(Simulation, RoundTripCountsMatchTheCostModel) {
  Result<std::unique_ptr<Experiment>> exp =
      Experiment::Create(SmallConfig());
  ASSERT_TRUE(exp.ok()) << exp.status();
  Experiment& e = **exp;
  size_t n_v = e.product().visible_nodes;

  // Navigational MLE: q = n_v + 1 (root also expanded).
  Result<ActionResult> late = e.RunAction(StrategyKind::kNavigationalLate,
                                          ActionKind::kMultiLevelExpand);
  ASSERT_TRUE(late.ok()) << late.status();
  EXPECT_EQ(late->wan.round_trips, n_v + 1);

  Result<ActionResult> early = e.RunAction(StrategyKind::kNavigationalEarly,
                                           ActionKind::kMultiLevelExpand);
  ASSERT_TRUE(early.ok()) << early.status();
  EXPECT_EQ(early->wan.round_trips, n_v + 1);

  // Query action: always one round trip.
  Result<ActionResult> query =
      e.RunAction(StrategyKind::kNavigationalLate, ActionKind::kQuery);
  ASSERT_TRUE(query.ok()) << query.status();
  EXPECT_EQ(query->wan.round_trips, 1u);
  // Late: every node crosses the WAN, the client keeps the visible ones.
  EXPECT_EQ(query->transmitted_rows, e.product().total_nodes + 1);
  EXPECT_EQ(query->visible_nodes, n_v + 1);  // + the visible root

  Result<ActionResult> query_early =
      e.RunAction(StrategyKind::kNavigationalEarly, ActionKind::kQuery);
  ASSERT_TRUE(query_early.ok()) << query_early.status();
  EXPECT_EQ(query_early->transmitted_rows, n_v + 1);
}

TEST(Simulation, TransmittedNodeCountsMatchTheCostModel) {
  Result<std::unique_ptr<Experiment>> exp =
      Experiment::Create(SmallConfig());
  ASSERT_TRUE(exp.ok()) << exp.status();
  Experiment& e = **exp;

  // Late MLE ships all ω children of every expanded node; expanded nodes
  // are the root and every visible node (leaves return zero children).
  Result<ActionResult> late = e.RunAction(StrategyKind::kNavigationalLate,
                                          ActionKind::kMultiLevelExpand);
  ASSERT_TRUE(late.ok()) << late.status();
  size_t visible_internal =
      e.product().visible_per_level[1] + e.product().visible_per_level[2];
  size_t expected_late = 4 * (1 + visible_internal);
  EXPECT_EQ(late->transmitted_rows, expected_late);

  // Early MLE ships exactly the visible nodes.
  Result<ActionResult> early = e.RunAction(StrategyKind::kNavigationalEarly,
                                           ActionKind::kMultiLevelExpand);
  ASSERT_TRUE(early.ok()) << early.status();
  EXPECT_EQ(early->transmitted_rows, e.product().visible_nodes);
}

TEST(Simulation, SimulatedTimesTrackTheClosedFormModel) {
  ExperimentConfig config = SmallConfig();
  Result<std::unique_ptr<Experiment>> exp = Experiment::Create(config);
  ASSERT_TRUE(exp.ok()) << exp.status();
  Experiment& e = **exp;

  model::TreeParams tree{config.generator.depth, config.generator.branching,
                         config.generator.sigma};
  model::NetworkParams net{config.wan.latency_s, config.wan.dtr_kbit,
                           static_cast<double>(config.wan.packet_bytes),
                           static_cast<double>(config.client.node_bytes)};

  for (StrategyKind strategy :
       {StrategyKind::kNavigationalLate, StrategyKind::kNavigationalEarly,
        StrategyKind::kRecursive}) {
    Result<ActionResult> sim =
        e.RunAction(strategy, ActionKind::kMultiLevelExpand);
    ASSERT_TRUE(sim.ok()) << sim.status();
    model::ResponseTime predicted =
        model::Predict(strategy, ActionKind::kMultiLevelExpand, tree, net);
    // Latency parts are exact (round trips are integral and match).
    EXPECT_NEAR(sim->wan.latency_seconds, predicted.latency_part, 1e-6)
        << model::StrategyKindName(strategy);
    // Transfer parts agree within 20% (the model uses fractional
    // expected node counts; the simulation uses the integral σ pattern
    // and real SQL text sizes).
    EXPECT_NEAR(sim->wan.transfer_seconds, predicted.transfer_part,
                0.2 * predicted.transfer_part + 0.05)
        << model::StrategyKindName(strategy);
  }
}

TEST(Simulation, CheckOutFlowsAgreeAndStoredProcedureWinsOnRoundTrips) {
  Result<std::unique_ptr<Experiment>> exp =
      Experiment::Create(SmallConfig());
  ASSERT_TRUE(exp.ok()) << exp.status();
  Experiment& e = **exp;
  std::unique_ptr<CheckOutClient> checkout = e.MakeCheckOutClient();
  int64_t root = e.product().root_obid;
  size_t expected_objects = e.product().visible_nodes + 1;  // + root

  // Stored procedure: exactly one round trip.
  Result<CheckOutResult> proc =
      checkout->CheckOut(root, CheckOutMethod::kStoredProcedure);
  ASSERT_TRUE(proc.ok()) << proc.status();
  EXPECT_TRUE(proc->success);
  EXPECT_EQ(proc->objects, expected_objects);
  EXPECT_EQ(proc->wan.round_trips, 1u);

  // Second check-out must be denied (∀rows rule: already checked out).
  Result<CheckOutResult> again =
      checkout->CheckOut(root, CheckOutMethod::kRecursiveBatched);
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_FALSE(again->success);

  // Check in (batched: 1 retrieval + 1 batch of table updates)...
  Result<CheckOutResult> checkin =
      checkout->CheckIn(root, CheckOutMethod::kStoredProcedure);
  ASSERT_TRUE(checkin.ok()) << checkin.status();
  EXPECT_TRUE(checkin->success);
  EXPECT_EQ(checkin->objects, expected_objects);

  // ...then the batched variant succeeds and costs few round trips.
  Result<CheckOutResult> batched =
      checkout->CheckOut(root, CheckOutMethod::kRecursiveBatched);
  ASSERT_TRUE(batched.ok()) << batched.status();
  EXPECT_TRUE(batched->success);
  EXPECT_EQ(batched->objects, expected_objects);
  // 1 retrieval + ONE batch carrying both object tables' UPDATEs.
  EXPECT_EQ(batched->wan.round_trips, 2u);
  ASSERT_TRUE(
      checkout->CheckIn(root, CheckOutMethod::kRecursiveBatched)->success);

  // Navigational: one retrieval per visible node + one update per object.
  Result<CheckOutResult> nav =
      checkout->CheckOut(root, CheckOutMethod::kNavigational);
  ASSERT_TRUE(nav.ok()) << nav.status();
  EXPECT_TRUE(nav->success);
  EXPECT_EQ(nav->objects, expected_objects);
  EXPECT_GT(nav->wan.round_trips, 2 * expected_objects - 2);
  EXPECT_GT(nav->seconds(), batched->seconds());
  EXPECT_GT(batched->seconds(), proc->seconds());
}

TEST(Simulation, SingleLevelExpandReturnsVisibleChildren) {
  Result<std::unique_ptr<Experiment>> exp =
      Experiment::Create(SmallConfig());
  ASSERT_TRUE(exp.ok()) << exp.status();
  Experiment& e = **exp;

  for (StrategyKind strategy :
       {StrategyKind::kNavigationalLate, StrategyKind::kNavigationalEarly,
        StrategyKind::kRecursive}) {
    Result<ActionResult> result =
        e.RunAction(strategy, ActionKind::kSingleLevelExpand);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(result->visible_nodes, e.product().visible_per_level[1])
        << model::StrategyKindName(strategy);
    EXPECT_EQ(result->wan.round_trips, 1u);
  }
}

}  // namespace
}  // namespace pdm::client
