// Row-vs-vectorized differentials for the join/aggregate/ORDER BY tier
// (DESIGN.md 5j): the bridge executors must produce byte-identical
// results to the Volcano operators on every edge the row engine
// defines semantics for — NULL join keys, empty build sides, duplicate
// keys, residual predicates, multi-key joins, int64/double key mixing
// past the 2^53 exactness bound, empty aggregation input, all-NULL
// groups, DISTINCT, fragment-boundary group spill, HAVING — plus
// ORDER BY tie stability and an MVCC-visibility-under-join canary
// (run it under TSan to catch fragment/index races).

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "engine/database.h"

namespace pdm {
namespace {

class VecJoinAggTest : public ::testing::Test {
 protected:
  /// obj(id, grp, val, dval): id = 0..rows-1 unique, grp = id % 7,
  /// val = 2*id except NULL when grp == 0 (so group 0 aggregates over
  /// NULLs only), dval = id * 0.25. Inserted in 256-row statements.
  static void FillObj(Database* db, size_t rows) {
    ASSERT_TRUE(db->Execute(
                      "CREATE TABLE obj (id INTEGER, grp INTEGER, "
                      "val INTEGER, dval DOUBLE)")
                    .ok());
    size_t next = 0;
    while (next < rows) {
      std::string sql = "INSERT INTO obj VALUES ";
      const size_t batch = std::min<size_t>(256, rows - next);
      for (size_t j = 0; j < batch; ++j) {
        const size_t i = next + j;
        if (j > 0) sql += ", ";
        sql += "(" + std::to_string(i) + ", " + std::to_string(i % 7) + ", ";
        sql += i % 7 == 0 ? "NULL" : std::to_string(2 * i);
        sql += ", " + std::to_string(i) + ".25)";
      }
      ASSERT_TRUE(db->Execute(sql).ok());
      next += batch;
    }
  }

  /// lnk(parent, child): parent = i / 3, child = i except NULL every
  /// 11th row — so children repeat per parent and some keys are NULL.
  static void FillLnk(Database* db, size_t rows) {
    ASSERT_TRUE(
        db->Execute("CREATE TABLE lnk (parent INTEGER, child INTEGER)").ok());
    size_t next = 0;
    while (next < rows) {
      std::string sql = "INSERT INTO lnk VALUES ";
      const size_t batch = std::min<size_t>(256, rows - next);
      for (size_t j = 0; j < batch; ++j) {
        const size_t i = next + j;
        if (j > 0) sql += ", ";
        sql += "(" + std::to_string(i / 3) + ", ";
        sql += i % 11 == 0 ? "NULL" : std::to_string(i);
        sql += ")";
      }
      ASSERT_TRUE(db->Execute(sql).ok());
      next += batch;
    }
  }

  /// Runs `sql` with vectorized execution on, then off, and asserts the
  /// rendered results are identical. Returns the on-path stats so
  /// callers can pin which executor actually ran.
  static ExecStats Differential(Database* db, const std::string& sql) {
    db->options().exec.vectorized_execution = true;
    Result<ResultSet> vec = db->Query(sql);
    EXPECT_TRUE(vec.ok()) << sql << " -> " << vec.status();
    ExecStats vec_stats = db->last_stats();
    db->options().exec.vectorized_execution = false;
    Result<ResultSet> row = db->Query(sql);
    EXPECT_TRUE(row.ok()) << sql << " -> " << row.status();
    EXPECT_EQ(db->last_stats().vec_batches, 0u) << sql;
    db->options().exec.vectorized_execution = true;
    if (vec.ok() && row.ok()) {
      EXPECT_EQ(vec->ToString(1 << 24), row->ToString(1 << 24)) << sql;
    }
    return vec_stats;
  }
};

TEST_F(VecJoinAggTest, BuildModeJoinMatchesRowEngine) {
  Database db;
  FillObj(&db, 300);
  FillLnk(&db, 300);
  // The derived table leaves Project -> Scan[filtered] on the build
  // side — not index-join eligible, so this is the vectorized batch
  // build (projection peeled) + int64 fast-path probe.
  ExecStats stats = Differential(
      &db,
      "SELECT l.parent, l.child, o.id FROM lnk AS l "
      "JOIN (SELECT id, grp FROM obj WHERE grp < 3) AS o "
      "ON l.child = o.id");
  EXPECT_GT(stats.vec_join_probe_rows, 0u);
  EXPECT_GT(stats.hash_join_builds, 0u);
  EXPECT_EQ(stats.join_probe_rows, 0u);
}

TEST_F(VecJoinAggTest, NullKeysNeverMatch) {
  Database db;
  FillObj(&db, 100);
  FillLnk(&db, 100);
  // lnk.child is NULL every 11th row; obj.val is NULL for grp 0. NULL
  // on either side of the equi-join must never produce a pair.
  Differential(&db,
               "SELECT l.child, o.id FROM lnk AS l "
               "JOIN obj AS o ON l.child = o.val WHERE o.id >= 0");
}

TEST_F(VecJoinAggTest, EmptyBuildSideYieldsNoRows) {
  Database db;
  FillObj(&db, 50);
  FillLnk(&db, 50);
  db.options().exec.vectorized_execution = true;
  Result<ResultSet> rs = db.Query(
      "SELECT l.child FROM lnk AS l JOIN obj AS o ON l.child = o.id "
      "WHERE o.grp < 0");
  ASSERT_TRUE(rs.ok()) << rs.status();
  EXPECT_EQ(rs->num_rows(), 0u);
}

TEST_F(VecJoinAggTest, DuplicateBuildKeysEmitAllMatchesInBuildOrder) {
  Database db;
  FillObj(&db, 120);
  // Self-join on grp: every probe hits ~17 build rows; emission order
  // (per probe row, matches in build order) must agree byte-for-byte.
  ExecStats stats = Differential(
      &db,
      "SELECT a.id, b.id FROM obj AS a JOIN obj AS b ON a.grp = b.grp "
      "WHERE b.val IS NOT NULL");
  EXPECT_GT(stats.vec_join_probe_rows, 0u);
}

TEST_F(VecJoinAggTest, MultiKeyJoinUsesGenericKeys) {
  Database db;
  FillObj(&db, 150);
  Differential(&db,
               "SELECT a.id, b.id FROM obj AS a "
               "JOIN obj AS b ON a.grp = b.grp AND a.val = b.val "
               "WHERE b.id < 100");
}

TEST_F(VecJoinAggTest, IntKeysJoinDoubleProbesExactly) {
  Database db;
  FillObj(&db, 60);
  FillLnk(&db, 60);
  // dval = id * 0.25 is integral only when id % 4 == 0: the double
  // probe against the int64 build table must match exactly those.
  ExecStats stats = Differential(
      &db,
      "SELECT o.dval, l.child FROM obj AS o "
      "JOIN (SELECT child FROM lnk WHERE parent >= 0) AS l "
      "ON o.dval = l.child");
  EXPECT_GT(stats.vec_join_probe_rows, 0u);
  EXPECT_GT(stats.hash_join_builds, 0u);
}

TEST_F(VecJoinAggTest, BuildKeysPastExactDoubleRangeDemoteToGenericTable) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE big (k INTEGER, tag VARCHAR)").ok());
  // 2^53 + 1 is not representable as a double; its presence on the
  // build side must demote the int64 fast path without losing the
  // rows already inserted through it.
  ASSERT_TRUE(db.Execute("INSERT INTO big VALUES (1, 'small'), "
                         "(9007199254740993, 'huge'), (2, 'small2')")
                  .ok());
  ASSERT_TRUE(db.Execute("CREATE TABLE probe (k INTEGER)").ok());
  ASSERT_TRUE(
      db.Execute("INSERT INTO probe VALUES (1), (9007199254740993), (3)")
          .ok());
  ExecStats stats = Differential(
      &db,
      "SELECT p.k, b.tag FROM probe AS p "
      "JOIN (SELECT k, tag FROM big WHERE k > 0) AS b ON p.k = b.k");
  EXPECT_GT(stats.hash_join_builds, 0u);
}

TEST_F(VecJoinAggTest, ResidualPredicateFiltersPairs) {
  Database db;
  FillObj(&db, 100);
  FillLnk(&db, 100);
  // The cross-side inequality can't be a hash key, so it survives as a
  // residual evaluated per emitted pair.
  Differential(&db,
               "SELECT l.parent, o.id FROM lnk AS l "
               "JOIN obj AS o ON l.child = o.id AND l.parent < o.grp "
               "WHERE o.id >= 0");
}

TEST_F(VecJoinAggTest, IndexJoinModeBatchesProbes) {
  Database db;
  FillObj(&db, 200);
  FillLnk(&db, 200);
  // Bare right scan + single key: both engines take the index-join
  // path; the vectorized one batches probes and gathers matched rows
  // column-at-a-time.
  ExecStats stats = Differential(&db,
                                 "SELECT l.parent, o.val FROM lnk AS l "
                                 "JOIN obj AS o ON l.child = o.id");
  EXPECT_GT(stats.vec_join_probe_rows, 0u);
  EXPECT_GT(stats.index_join_probes, 0u);
}

TEST_F(VecJoinAggTest, GroupByAggregatesMatchRowEngine) {
  Database db;
  FillObj(&db, 500);
  ExecStats stats = Differential(
      &db,
      "SELECT grp, COUNT(*), COUNT(val), SUM(val), MIN(val), MAX(val), "
      "AVG(val) FROM obj WHERE id >= 0 GROUP BY grp");
  EXPECT_GT(stats.vec_agg_input_rows, 0u);
}

TEST_F(VecJoinAggTest, ScalarAggregateOverEmptyInput) {
  Database db;
  FillObj(&db, 50);
  db.options().exec.vectorized_execution = true;
  Result<ResultSet> rs =
      db.Query("SELECT COUNT(*), SUM(val), AVG(val) FROM obj WHERE id < 0");
  ASSERT_TRUE(rs.ok()) << rs.status();
  ASSERT_EQ(rs->num_rows(), 1u);
  EXPECT_EQ(rs->At(0, 0).int64_value(), 0);
  EXPECT_TRUE(rs->At(0, 1).is_null());
  EXPECT_TRUE(rs->At(0, 2).is_null());
  Differential(&db, "SELECT COUNT(*), SUM(val), AVG(val) FROM obj "
                    "WHERE id < 0");
  // GROUP BY over empty input yields no groups at all.
  Result<ResultSet> grouped = db.Query(
      "SELECT grp, COUNT(*) FROM obj WHERE id < 0 GROUP BY grp");
  ASSERT_TRUE(grouped.ok());
  EXPECT_EQ(grouped->num_rows(), 0u);
}

TEST_F(VecJoinAggTest, AllNullGroupAggregates) {
  Database db;
  FillObj(&db, 140);
  // Group 0's val is entirely NULL: COUNT(val) = 0, SUM/AVG/MIN/MAX
  // NULL, COUNT(*) still counts the rows.
  db.options().exec.vectorized_execution = true;
  Result<ResultSet> rs = db.Query(
      "SELECT COUNT(*), COUNT(val), SUM(val), AVG(val), MIN(val) "
      "FROM obj WHERE grp = grp AND grp < 1 GROUP BY grp");
  ASSERT_TRUE(rs.ok()) << rs.status();
  ASSERT_EQ(rs->num_rows(), 1u);
  EXPECT_EQ(rs->At(0, 0).int64_value(), 20);
  EXPECT_EQ(rs->At(0, 1).int64_value(), 0);
  EXPECT_TRUE(rs->At(0, 2).is_null());
  EXPECT_TRUE(rs->At(0, 3).is_null());
  EXPECT_TRUE(rs->At(0, 4).is_null());
  Differential(&db,
               "SELECT grp, COUNT(*), COUNT(val), SUM(val), AVG(val) "
               "FROM obj WHERE id >= 0 GROUP BY grp");
}

TEST_F(VecJoinAggTest, DistinctAggregates) {
  Database db;
  FillObj(&db, 200);
  Differential(&db,
               "SELECT COUNT(DISTINCT grp), SUM(DISTINCT grp) FROM obj "
               "WHERE id >= 0");
  Differential(&db,
               "SELECT grp, COUNT(DISTINCT val) FROM obj WHERE id >= 0 "
               "GROUP BY grp");
}

TEST_F(VecJoinAggTest, DoubleSumsAccumulateInRowOrder) {
  Database db;
  FillObj(&db, 300);
  // Float addition is order-sensitive; both engines fold dval in scan
  // order so the rendered sums must agree exactly.
  Differential(&db,
               "SELECT grp, SUM(dval), AVG(dval) FROM obj WHERE id >= 0 "
               "GROUP BY grp");
}

TEST_F(VecJoinAggTest, GroupsSpanningTheFragmentBoundary) {
  Database db;
  FillObj(&db, 1025);  // two fragments: 1024 + 1
  ExecStats stats = Differential(
      &db,
      "SELECT grp, COUNT(*), SUM(val) FROM obj WHERE id >= 0 GROUP BY grp");
  EXPECT_EQ(stats.vec_agg_input_rows, 1025u);
  EXPECT_GE(stats.vec_batches, 2u);
}

TEST_F(VecJoinAggTest, HavingFiltersFinishedGroups) {
  Database db;
  FillObj(&db, 130);
  Differential(&db,
               "SELECT grp, COUNT(*) FROM obj WHERE id >= 0 GROUP BY grp "
               "HAVING COUNT(*) > 18");
}

TEST_F(VecJoinAggTest, OrderByOverBridgedScanIsStable) {
  Database db;
  FillObj(&db, 400);
  db.options().exec.vectorized_execution = true;
  // Sort itself stays on the row path but its input arrives through
  // the batch->row bridge — and ties on grp must keep scan (= id)
  // order, pinned by SortExecutor's stable_sort.
  Result<ResultSet> rs =
      db.Query("SELECT grp, id FROM obj WHERE val IS NOT NULL ORDER BY grp");
  ASSERT_TRUE(rs.ok()) << rs.status();
  EXPECT_GT(db.last_stats().vec_batches, 0u);
  int64_t prev_grp = -1;
  int64_t prev_id = -1;
  for (size_t i = 0; i < rs->num_rows(); ++i) {
    const int64_t g = rs->At(i, 0).int64_value();
    const int64_t id = rs->At(i, 1).int64_value();
    ASSERT_GE(g, prev_grp);
    if (g == prev_grp) ASSERT_GT(id, prev_id) << "tie broke scan order";
    prev_grp = g;
    prev_id = id;
  }
  Differential(&db,
               "SELECT grp, id FROM obj WHERE val IS NOT NULL ORDER BY grp");
}

TEST_F(VecJoinAggTest, RowOnlyProjectionConsumesBridgedBatches) {
  Database db;
  FillObj(&db, 300);
  db.options().exec.vectorized_execution = true;
  // CASE is outside the vectorizable subset, so the projection runs on
  // the row path — fed by the bridge instead of a row-at-a-time scan.
  ExecStats stats = Differential(
      &db,
      "SELECT CASE WHEN val IS NULL THEN -1 ELSE val END FROM obj "
      "WHERE id >= 5");
  EXPECT_GT(stats.vec_batches, 0u);
}

TEST_F(VecJoinAggTest, AggregateOverJoinStaysCorrect) {
  Database db;
  FillObj(&db, 260);
  FillLnk(&db, 260);
  // Aggregate over a join input is beyond the vec aggregate's coverage
  // (its child is not a Filter*->Scan chain) — the join still runs
  // vectorized underneath and the row aggregator folds its output.
  ExecStats stats = Differential(
      &db,
      "SELECT o.grp, COUNT(*) FROM lnk AS l "
      "JOIN obj AS o ON l.child = o.id GROUP BY o.grp");
  EXPECT_GT(stats.vec_join_probe_rows, 0u);
}

// MVCC canary: a writer rolls the whole table's gen forward while a
// reader joins against it. Snapshot isolation means every query must
// see exactly one generation across all joined rows — a torn read
// (mixing fragments from different versions) shows up as two distinct
// gens in one result. Run under TSan to also catch fragment/index
// races between the vectorized gather and the appending writer.
TEST(VecJoinMvccCanary, JoinSeesOneGenerationUnderConcurrentUpdates) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE items (id INTEGER, gen INTEGER)").ok());
  std::string sql = "INSERT INTO items VALUES ";
  for (int i = 0; i < 200; ++i) {
    if (i > 0) sql += ", ";
    sql += "(" + std::to_string(i) + ", 0)";
  }
  ASSERT_TRUE(db.Execute(sql).ok());
  ASSERT_TRUE(db.Execute("CREATE TABLE refs (id INTEGER)").ok());
  sql = "INSERT INTO refs VALUES ";
  for (int i = 0; i < 200; ++i) {
    if (i > 0) sql += ", ";
    sql += "(" + std::to_string(i) + ")";
  }
  ASSERT_TRUE(db.Execute(sql).ok());

  std::atomic<bool> done{false};
  std::atomic<int> torn{0};
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      Result<ResultSet> rs = db.Query(
          "SELECT i.gen FROM refs AS r JOIN items AS i ON r.id = i.id");
      ASSERT_TRUE(rs.ok()) << rs.status();
      ASSERT_EQ(rs->num_rows(), 200u);
      std::set<int64_t> gens;
      for (size_t i = 0; i < rs->num_rows(); ++i) {
        gens.insert(rs->At(i, 0).int64_value());
      }
      if (gens.size() != 1) torn.fetch_add(1);
    }
  });
  for (int i = 0; i < 25; ++i) {
    ASSERT_TRUE(db.Execute("UPDATE items SET gen = gen + 1").ok());
  }
  done.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(torn.load(), 0);
}

}  // namespace
}  // namespace pdm
