// Tests for the Experiment facade — the library's top-level public API —
// and its configuration variants.

#include <gtest/gtest.h>

#include "client/experiment.h"
#include "pdm/pdm_schema.h"

namespace pdm::client {
namespace {

using model::ActionKind;
using model::StrategyKind;

TEST(ExperimentApi, CreateWiresEverything) {
  ExperimentConfig config;
  config.generator.depth = 2;
  config.generator.branching = 2;
  Result<std::unique_ptr<Experiment>> experiment =
      Experiment::Create(config);
  ASSERT_TRUE(experiment.ok()) << experiment.status();
  Experiment& e = **experiment;

  // Schema installed, product generated, rules in place, procedures
  // registered.
  EXPECT_TRUE(e.server().database().catalog().HasTable(pdmsys::kAssyTable));
  EXPECT_GT(e.product().total_nodes, 0u);
  EXPECT_EQ(e.rule_table().size(), 3u);  // acc + link + check-out rules
  ResultSet out;
  EXPECT_TRUE(e.server()
                  .database()
                  .Execute("CALL pdm_checkin(1, 'scott', 1, 40, 60)", &out)
                  .ok());
}

TEST(ExperimentApi, InvalidGeneratorConfigSurfaces) {
  ExperimentConfig config;
  config.generator.depth = 0;
  EXPECT_FALSE(Experiment::Create(config).ok());
}

TEST(ExperimentApi, MakeStrategyCoversAllKinds) {
  ExperimentConfig config;
  config.generator.depth = 2;
  config.generator.branching = 2;
  Result<std::unique_ptr<Experiment>> experiment =
      Experiment::Create(config);
  ASSERT_TRUE(experiment.ok());
  for (StrategyKind kind :
       {StrategyKind::kNavigationalLate, StrategyKind::kNavigationalEarly,
        StrategyKind::kRecursive}) {
    std::unique_ptr<AccessStrategy> strategy =
        (*experiment)->MakeStrategy(kind);
    ASSERT_NE(strategy, nullptr);
    EXPECT_FALSE(strategy->name().empty());
    Result<ActionResult> result =
        strategy->SingleLevelExpand((*experiment)->product().root_obid);
    EXPECT_TRUE(result.ok()) << strategy->name() << ": " << result.status();
  }
}

TEST(ExperimentApi, NodeBytesScaleTransferTime) {
  for (size_t node_bytes : {256u, 1024u}) {
    ExperimentConfig config;
    config.generator.depth = 3;
    config.generator.branching = 3;
    config.client.node_bytes = node_bytes;
    Result<std::unique_ptr<Experiment>> experiment =
        Experiment::Create(config);
    ASSERT_TRUE(experiment.ok());
    Result<ActionResult> result = (*experiment)->RunAction(
        StrategyKind::kRecursive, ActionKind::kMultiLevelExpand);
    ASSERT_TRUE(result.ok());
    // Response payload = visible objects (+root) * node_bytes.
    EXPECT_DOUBLE_EQ(
        result->wan.response_payload_bytes,
        static_cast<double>((result->visible_nodes + 1) * node_bytes));
  }
}

TEST(ExperimentApi, WanParametersReachTheLink) {
  ExperimentConfig config;
  config.generator.depth = 2;
  config.generator.branching = 2;
  config.wan.latency_s = 0.25;
  Result<std::unique_ptr<Experiment>> experiment =
      Experiment::Create(config);
  ASSERT_TRUE(experiment.ok());
  Result<ActionResult> result = (*experiment)->RunAction(
      StrategyKind::kRecursive, ActionKind::kMultiLevelExpand);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->wan.latency_seconds, 0.5, 1e-9);
}

TEST(ExperimentApi, SuccessiveActionsAreIndependent) {
  ExperimentConfig config;
  config.generator.depth = 2;
  config.generator.branching = 3;
  Result<std::unique_ptr<Experiment>> experiment =
      Experiment::Create(config);
  ASSERT_TRUE(experiment.ok());
  Experiment& e = **experiment;

  Result<ActionResult> first =
      e.RunAction(StrategyKind::kRecursive, ActionKind::kMultiLevelExpand);
  Result<ActionResult> second =
      e.RunAction(StrategyKind::kRecursive, ActionKind::kMultiLevelExpand);
  ASSERT_TRUE(first.ok() && second.ok());
  // Stats are per action, not cumulative.
  EXPECT_EQ(first->wan.round_trips, second->wan.round_trips);
  EXPECT_DOUBLE_EQ(first->seconds(), second->seconds());
}

TEST(ExperimentApi, InstallStandardRulesIsSelfContained) {
  rules::RuleTable table;
  ASSERT_TRUE(InstallStandardRules(&table).ok());
  EXPECT_EQ(table.size(), 3u);
  // One rule of each relevant class.
  EXPECT_EQ(table
                .FetchRelevant("anyone", rules::RuleAction::kQuery,
                               rules::ConditionClass::kRow)
                .size(),
            2u);  // acc + link rules
  EXPECT_EQ(table
                .FetchRelevant("anyone", rules::RuleAction::kCheckOut,
                               rules::ConditionClass::kForAllRows)
                .size(),
            1u);
}

}  // namespace
}  // namespace pdm::client
