// Validates the closed-form response-time model against the numbers the
// paper prints in Tables 2, 3 and 4 (to their two printed decimals).

#include <gtest/gtest.h>

#include "model/cost_model.h"

namespace pdm::model {
namespace {

constexpr double kTol = 0.011;  // the paper prints two decimals

TreeParams Shape(int depth, int branching) {
  return TreeParams{depth, branching, 0.6};
}

NetworkParams Net(double lat, double dtr) {
  return NetworkParams{lat, dtr, 4096, 512};
}

TEST(CostModel, NodeCountsMatchPaperFormulas) {
  // α=3, ω=9, σ=0.6: n_v = 5.4 + 29.16 + 157.464
  EXPECT_NEAR(VisibleNodes(Shape(3, 9)), 192.024, 1e-9);
  EXPECT_NEAR(TotalNodes(Shape(3, 9)), 819.0, 1e-9);
  // α=7, ω=5: Σ 3^i = 3279 visible; Σ 5^i = 97655 total
  EXPECT_NEAR(VisibleNodes(Shape(7, 5)), 3279.0, 1e-6);
  EXPECT_NEAR(TotalNodes(Shape(7, 5)), 97655.0, 1e-6);
}

struct Cell {
  int depth;
  int branching;
  double lat;
  double dtr;
  ActionKind action;
  double latency_part;
  double transfer_part;
};

TEST(CostModel, Table2LateEvaluation) {
  const Cell kCells[] = {
      // α=3 ω=9 grid column, all three network rows
      {3, 9, 0.15, 256, ActionKind::kQuery, 0.30, 12.98},
      {3, 9, 0.15, 256, ActionKind::kSingleLevelExpand, 0.30, 0.33},
      {3, 9, 0.15, 256, ActionKind::kMultiLevelExpand, 57.91, 41.19},
      {3, 9, 0.15, 512, ActionKind::kQuery, 0.30, 6.49},
      {3, 9, 0.05, 1024, ActionKind::kMultiLevelExpand, 19.30, 10.30},
      // α=9 ω=3
      {9, 3, 0.15, 256, ActionKind::kQuery, 0.30, 461.48},
      {9, 3, 0.15, 256, ActionKind::kSingleLevelExpand, 0.30, 0.23},
      {9, 3, 0.15, 256, ActionKind::kMultiLevelExpand, 133.52, 95.01},
      {9, 3, 0.15, 512, ActionKind::kMultiLevelExpand, 133.52, 47.51},
      // α=7 ω=5
      {7, 5, 0.15, 256, ActionKind::kQuery, 0.30, 1526.05},
      {7, 5, 0.15, 256, ActionKind::kMultiLevelExpand, 984.00, 700.39},
      {7, 5, 0.05, 1024, ActionKind::kMultiLevelExpand, 328.00, 175.10},
  };
  for (const Cell& c : kCells) {
    ResponseTime rt = Predict(StrategyKind::kNavigationalLate, c.action,
                              Shape(c.depth, c.branching), Net(c.lat, c.dtr));
    EXPECT_NEAR(rt.latency_part, c.latency_part, kTol)
        << "latency α=" << c.depth << " ω=" << c.branching << " dtr=" << c.dtr
        << " " << ActionKindName(c.action);
    EXPECT_NEAR(rt.transfer_part, c.transfer_part, kTol)
        << "transfer α=" << c.depth << " ω=" << c.branching
        << " dtr=" << c.dtr << " " << ActionKindName(c.action);
  }
}

TEST(CostModel, Table3EarlyEvaluation) {
  const Cell kCells[] = {
      {3, 9, 0.15, 256, ActionKind::kQuery, 0.30, 3.19},
      {3, 9, 0.15, 256, ActionKind::kSingleLevelExpand, 0.30, 0.27},
      {3, 9, 0.15, 256, ActionKind::kMultiLevelExpand, 57.91, 39.19},
      {9, 3, 0.15, 256, ActionKind::kQuery, 0.30, 7.13},
      {9, 3, 0.15, 256, ActionKind::kMultiLevelExpand, 133.52, 90.39},
      {7, 5, 0.15, 256, ActionKind::kQuery, 0.30, 51.42},
      {7, 5, 0.15, 256, ActionKind::kMultiLevelExpand, 984.00, 666.23},
      {7, 5, 0.15, 512, ActionKind::kMultiLevelExpand, 984.00, 333.12},
      {3, 9, 0.05, 1024, ActionKind::kQuery, 0.10, 0.80},
  };
  for (const Cell& c : kCells) {
    ResponseTime rt = Predict(StrategyKind::kNavigationalEarly, c.action,
                              Shape(c.depth, c.branching), Net(c.lat, c.dtr));
    EXPECT_NEAR(rt.latency_part, c.latency_part, kTol)
        << "latency α=" << c.depth << " ω=" << c.branching;
    EXPECT_NEAR(rt.transfer_part, c.transfer_part, kTol)
        << "transfer α=" << c.depth << " ω=" << c.branching
        << " dtr=" << c.dtr << " " << ActionKindName(c.action);
  }
}

TEST(CostModel, Table4RecursiveQueries) {
  struct RecCell {
    int depth;
    int branching;
    double lat;
    double dtr;
    double total;
    double saving;
  };
  const RecCell kCells[] = {
      {3, 9, 0.15, 256, 3.49, 96.48},  {9, 3, 0.15, 256, 7.43, 96.75},
      {7, 5, 0.15, 256, 51.72, 96.93}, {3, 9, 0.15, 512, 1.89, 97.59},
      {9, 3, 0.15, 512, 3.86, 97.87},  {7, 5, 0.15, 512, 26.01, 98.05},
      {3, 9, 0.05, 1024, 0.90, 96.97}, {9, 3, 0.05, 1024, 1.88, 97.24},
      {7, 5, 0.05, 1024, 12.96, 97.42},
  };
  for (const RecCell& c : kCells) {
    TreeParams tree = Shape(c.depth, c.branching);
    NetworkParams net = Net(c.lat, c.dtr);
    ResponseTime rec =
        Predict(StrategyKind::kRecursive, ActionKind::kMultiLevelExpand, tree,
                net);
    ResponseTime late = Predict(StrategyKind::kNavigationalLate,
                                ActionKind::kMultiLevelExpand, tree, net);
    EXPECT_NEAR(rec.total(), c.total, kTol)
        << "α=" << c.depth << " ω=" << c.branching << " dtr=" << c.dtr;
    EXPECT_NEAR(SavingPercent(late, rec), c.saving, 0.05)
        << "saving α=" << c.depth << " ω=" << c.branching;
    // Recursion: exactly one round trip pair.
    EXPECT_NEAR(rec.latency_part, 2 * c.lat, 1e-12);
  }
}

TEST(CostModel, Table3SavingsMatchPaper) {
  TreeParams tree = Shape(3, 9);
  NetworkParams net = Net(0.15, 256);
  ResponseTime late =
      Predict(StrategyKind::kNavigationalLate, ActionKind::kQuery, tree, net);
  ResponseTime early =
      Predict(StrategyKind::kNavigationalEarly, ActionKind::kQuery, tree, net);
  EXPECT_NEAR(SavingPercent(late, early), 73.74, 0.05);

  // MLE savings from early evaluation alone are tiny (the paper's point).
  ResponseTime late_mle = Predict(StrategyKind::kNavigationalLate,
                                  ActionKind::kMultiLevelExpand, tree, net);
  ResponseTime early_mle = Predict(StrategyKind::kNavigationalEarly,
                                   ActionKind::kMultiLevelExpand, tree, net);
  EXPECT_NEAR(SavingPercent(late_mle, early_mle), 2.02, 0.05);
}

TEST(CostModel, BatchedRoundTripsAreDepthPlusOne) {
  // Level-wise batching: one exchange per tree level, independent of σω.
  EXPECT_DOUBLE_EQ(RoundTripCount(StrategyKind::kBatchedLate,
                                  ActionKind::kMultiLevelExpand, Shape(3, 9)),
                   4.0);
  EXPECT_DOUBLE_EQ(RoundTripCount(StrategyKind::kBatchedEarly,
                                  ActionKind::kMultiLevelExpand, Shape(9, 3)),
                   10.0);
  // Non-MLE actions and non-batched strategies fall back to QueryCount.
  EXPECT_DOUBLE_EQ(RoundTripCount(StrategyKind::kBatchedLate,
                                  ActionKind::kSingleLevelExpand, Shape(3, 9)),
                   1.0);
  EXPECT_DOUBLE_EQ(RoundTripCount(StrategyKind::kNavigationalLate,
                                  ActionKind::kMultiLevelExpand, Shape(3, 9)),
                   QueryCount(StrategyKind::kNavigationalLate,
                              ActionKind::kMultiLevelExpand, Shape(3, 9)));
}

TEST(CostModel, BatchedMleLatencyCollapses) {
  TreeParams tree = Shape(3, 9);
  NetworkParams net = Net(0.15, 256);
  ResponseTime batched = Predict(StrategyKind::kBatchedLate,
                                 ActionKind::kMultiLevelExpand, tree, net);
  // Latency: (α+1)·2·T_Lat = 4 · 0.3 instead of (n_v+1)·2·T_Lat ≈ 57.91.
  EXPECT_NEAR(batched.latency_part, 1.2, 1e-12);
  ResponseTime late = Predict(StrategyKind::kNavigationalLate,
                              ActionKind::kMultiLevelExpand, tree, net);
  EXPECT_LT(batched.total(), late.total());
  // Transfer shrinks too (per-statement packet paddings collapse into
  // per-batch ones) but must still cover the raw node payload, which is
  // shared with the wrapped late strategy.
  EXPECT_LT(batched.transfer_part, late.transfer_part);
  double payload_seconds = net.TransferSeconds(
      TransmittedNodes(StrategyKind::kBatchedLate,
                       ActionKind::kMultiLevelExpand, tree) *
      net.node_bytes);
  EXPECT_GT(batched.transfer_part, payload_seconds);
}

TEST(CostModel, BatchedEarlyShipsFewerNodesThanBatchedLate) {
  TreeParams tree = Shape(3, 9);
  NetworkParams net = Net(0.15, 256);
  ResponseTime early = Predict(StrategyKind::kBatchedEarly,
                               ActionKind::kMultiLevelExpand, tree, net);
  ResponseTime late = Predict(StrategyKind::kBatchedLate,
                              ActionKind::kMultiLevelExpand, tree, net);
  EXPECT_LT(early.transfer_part, late.transfer_part);
  EXPECT_DOUBLE_EQ(early.latency_part, late.latency_part);
}

TEST(CostModel, BatchedNonMleEqualsWrappedStrategy) {
  // Query and single-level expand are single statements: batching is a
  // no-op and the prediction must match the wrapped navigational regime.
  TreeParams tree = Shape(7, 5);
  NetworkParams net = Net(0.15, 512);
  for (ActionKind action :
       {ActionKind::kQuery, ActionKind::kSingleLevelExpand}) {
    ResponseTime batched =
        Predict(StrategyKind::kBatchedLate, action, tree, net);
    ResponseTime nav =
        Predict(StrategyKind::kNavigationalLate, action, tree, net);
    EXPECT_DOUBLE_EQ(batched.total(), nav.total());
    ResponseTime batched_early =
        Predict(StrategyKind::kBatchedEarly, action, tree, net);
    ResponseTime nav_early =
        Predict(StrategyKind::kNavigationalEarly, action, tree, net);
    EXPECT_DOUBLE_EQ(batched_early.total(), nav_early.total());
  }
}

TEST(CostModel, BatchedRequestBytesGrowTransferOnly) {
  TreeParams tree = Shape(3, 9);
  NetworkParams net = Net(0.15, 256);
  ResponseTime compact = Predict(StrategyKind::kBatchedLate,
                                 ActionKind::kMultiLevelExpand, tree, net,
                                 /*query_bytes=*/100);
  ResponseTime verbose = Predict(StrategyKind::kBatchedLate,
                                 ActionKind::kMultiLevelExpand, tree, net,
                                 /*query_bytes=*/2000);
  EXPECT_GT(verbose.transfer_part, compact.transfer_part);
  EXPECT_DOUBLE_EQ(verbose.latency_part, compact.latency_part);
}

TEST(CostModel, LargeRecursiveQueryNeedsMorePackets) {
  TreeParams tree = Shape(3, 9);
  NetworkParams net = Net(0.15, 256);
  ResponseTime small =
      Predict(StrategyKind::kRecursive, ActionKind::kMultiLevelExpand, tree,
              net, /*query_bytes=*/1000);
  ResponseTime large =
      Predict(StrategyKind::kRecursive, ActionKind::kMultiLevelExpand, tree,
              net, /*query_bytes=*/9000);
  // 9000 bytes = 3 packets vs 1: transfer grows, latency unchanged.
  EXPECT_GT(large.transfer_part, small.transfer_part);
  EXPECT_DOUBLE_EQ(large.latency_part, small.latency_part);
}

TEST(CostModel, PipelinedMleBeatsBatchedOnTheWholeGrid) {
  // Whenever the tree has at least one transition (α >= 1) there is a
  // latency window to hide, so the pipelined prediction is strictly
  // below the batched one — on every tree × net cell of the paper grid —
  // while latency and transfer themselves are byte-for-byte the batched
  // values (the overlap only *hides* time, it never changes traffic).
  for (const TreeParams& tree : PaperTreeScenarios()) {
    for (const NetworkParams& net : PaperNetworkScenarios()) {
      const struct {
        StrategyKind pipelined;
        StrategyKind batched;
      } kVariants[] = {
          {StrategyKind::kPipelinedLate, StrategyKind::kBatchedLate},
          {StrategyKind::kPipelinedEarly, StrategyKind::kBatchedEarly}};
      for (const auto& variant : kVariants) {
        ResponseTime pipelined = Predict(
            variant.pipelined, ActionKind::kMultiLevelExpand, tree, net);
        ResponseTime batched = Predict(
            variant.batched, ActionKind::kMultiLevelExpand, tree, net);
        EXPECT_DOUBLE_EQ(pipelined.latency_part, batched.latency_part)
            << "α=" << tree.depth << " ω=" << tree.branching;
        EXPECT_DOUBLE_EQ(pipelined.transfer_part, batched.transfer_part)
            << "α=" << tree.depth << " ω=" << tree.branching;
        EXPECT_DOUBLE_EQ(batched.overlap_hidden, 0.0);
        EXPECT_GT(pipelined.overlap_hidden, 0.0)
            << "α=" << tree.depth << " ω=" << tree.branching;
        // At most the full 2·T_Lat window per inter-level transition.
        EXPECT_LE(pipelined.overlap_hidden,
                  tree.depth * 2.0 * net.latency_s + 1e-12);
        EXPECT_LT(pipelined.total(), batched.total());
      }
    }
  }
}

TEST(CostModel, PipelinedNonMleEqualsWrappedStrategy) {
  // Query and single-level expand are one statement: nothing to overlap.
  TreeParams tree = Shape(7, 5);
  NetworkParams net = Net(0.15, 512);
  for (ActionKind action :
       {ActionKind::kQuery, ActionKind::kSingleLevelExpand}) {
    ResponseTime pipelined =
        Predict(StrategyKind::kPipelinedLate, action, tree, net);
    ResponseTime nav =
        Predict(StrategyKind::kNavigationalLate, action, tree, net);
    EXPECT_DOUBLE_EQ(pipelined.total(), nav.total());
    EXPECT_DOUBLE_EQ(pipelined.overlap_hidden, 0.0);
  }
}

TEST(CostModel, PredictPipelinedFromTrafficDegeneratesToSequential) {
  // With no exchange overlapped, the per-exchange form must reduce to
  // the aggregate PredictFromTraffic evaluation: same latency, same
  // transfer (the per-batch half-packet is charged per exchange), zero
  // hidden.
  NetworkParams net = Net(0.15, 256);
  std::vector<ExchangeTraffic> exchanges = {
      {1, 512.0, false}, {2, 4096.0, false}, {4, 16384.0, false}};
  ResponseTime per_exchange = PredictPipelinedFromTraffic(net, exchanges);
  TrafficCounts counts{3, 1 + 2 + 4, 512.0 + 4096.0 + 16384.0};
  ResponseTime aggregate = PredictFromTraffic(net, counts);
  EXPECT_DOUBLE_EQ(per_exchange.latency_part, aggregate.latency_part);
  EXPECT_NEAR(per_exchange.transfer_part, aggregate.transfer_part, 1e-12);
  EXPECT_DOUBLE_EQ(per_exchange.overlap_hidden, 0.0);
}

TEST(CostModel, PredictPipelinedFromTrafficHidesPerTransition) {
  NetworkParams net = Net(0.15, 256);
  // Exchange 1's transfer: (1·4096 + 65536 + 2048) · 8 / (256·1024)
  // = 2.1875 s >> 2·T_Lat — exchange 2 hides its full 0.3 s window.
  // Exchange 2's transfer: (1·4096 + 512 + 2048) · 8 / (256·1024)
  // = 0.203125 s < 0.3 — exchange 3 hides only that much.
  std::vector<ExchangeTraffic> exchanges = {
      {1, 65536.0, false}, {1, 512.0, true}, {1, 512.0, true}};
  ResponseTime rt = PredictPipelinedFromTraffic(net, exchanges);
  EXPECT_DOUBLE_EQ(rt.latency_part, 3 * 2 * 0.15);
  EXPECT_DOUBLE_EQ(rt.overlap_hidden, 0.3 + 0.203125);
  EXPECT_DOUBLE_EQ(rt.total(),
                   rt.latency_part + rt.transfer_part - rt.overlap_hidden);
}

TEST(CostModel, PaperGridsHaveExpectedShape) {
  EXPECT_EQ(ComputePaperTable(StrategyKind::kNavigationalLate).size(), 27u);
  EXPECT_EQ(ComputePaperTable(StrategyKind::kNavigationalEarly).size(), 27u);
  EXPECT_EQ(ComputePaperTable(StrategyKind::kRecursive).size(), 9u);
}

TEST(CostModel, WaveDedupFactorBounds) {
  // Unbounded window: amortized by the full client count.
  EXPECT_DOUBLE_EQ(WaveDedupFactor(8, 29.16, 0), 8.0);
  EXPECT_DOUBLE_EQ(WaveDedupFactor(1, 5.4, 0), 1.0);
  // Bounded window: whole level-batches per wave, min one (a wave
  // never splits a submission, so coalescing never degrades below the
  // uncoalesced factor 1).
  EXPECT_DOUBLE_EQ(WaveDedupFactor(8, 5.0, 16), 3.0);   // floor(16/5)
  EXPECT_DOUBLE_EQ(WaveDedupFactor(8, 29.0, 16), 1.0);  // oversized batch
  EXPECT_DOUBLE_EQ(WaveDedupFactor(2, 1.0, 16), 2.0);   // client-capped
}

TEST(CostModel, CoalescedParseCostFactorShrinksWithClients) {
  TreeParams tree = Shape(3, 9);
  // One client or a window too small for any level to coalesce: full
  // parse cost.
  EXPECT_DOUBLE_EQ(CoalescedParseCostFactor(1, tree, 0), 1.0);
  // Unbounded window: every level amortized by the client count.
  EXPECT_DOUBLE_EQ(CoalescedParseCostFactor(4, tree, 0), 0.25);
  EXPECT_DOUBLE_EQ(CoalescedParseCostFactor(8, tree, 0), 0.125);
  // Bounded windows land in between, monotonically in the window.
  double w16 = CoalescedParseCostFactor(8, tree, 16);
  double w64 = CoalescedParseCostFactor(8, tree, 64);
  EXPECT_LT(w64, w16);
  EXPECT_LT(w16, 1.0);
  EXPECT_GT(w64, 0.125);
}

}  // namespace
}  // namespace pdm::model
