// Unit tests for the Status/Result error-handling primitives.

#include <gtest/gtest.h>

#include "common/result.h"
#include "common/status.h"

namespace pdm {
namespace {

TEST(Status, OkByDefaultAndFactories) {
  EXPECT_TRUE(Status().ok());
  EXPECT_TRUE(Status::OK().ok());
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::BindError("x").code(), StatusCode::kBindError);
  EXPECT_EQ(Status::ExecutionError("x").code(), StatusCode::kExecutionError);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::NotImplemented("x").code(), StatusCode::kNotImplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::InvalidArgument("x").code(),
            StatusCode::kInvalidArgument);
}

TEST(Status, ToStringAndContext) {
  EXPECT_EQ(Status::OK().ToString(), "OK");
  Status err = Status::NotFound("table 'x'");
  EXPECT_EQ(err.ToString(), "NotFound: table 'x'");
  Status wrapped = err.WithContext("while binding");
  EXPECT_EQ(wrapped.ToString(), "NotFound: while binding: table 'x'");
  // WithContext is a no-op on OK.
  EXPECT_TRUE(Status::OK().WithContext("ctx").ok());
}

TEST(Status, EqualityAndStreaming) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  std::ostringstream os;
  os << Status::Internal("boom");
  EXPECT_EQ(os.str(), "Internal: boom");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  PDM_ASSIGN_OR_RETURN(int half, Half(x));
  PDM_ASSIGN_OR_RETURN(int quarter, Half(half));
  return quarter;
}

TEST(Result, ValueAndErrorPaths) {
  Result<int> ok = Half(4);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  EXPECT_EQ(ok.value(), 2);

  Result<int> err = Half(3);
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
}

TEST(Result, AssignOrReturnPropagates) {
  EXPECT_EQ(*Quarter(8), 2);
  EXPECT_FALSE(Quarter(6).ok());  // inner Half(3) fails
  EXPECT_FALSE(Quarter(5).ok());
}

TEST(Result, ValueOrAndMoveOut) {
  EXPECT_EQ(Result<int>(Half(3)).ValueOr(-1), -1);
  EXPECT_EQ(Result<int>(Half(8)).ValueOr(-1), 4);

  Result<std::string> text = std::string("abc");
  std::string moved = std::move(text).value();
  EXPECT_EQ(moved, "abc");
  // Rvalue deref works on temporaries.
  EXPECT_EQ(*Result<std::string>(std::string("xy")), "xy");
}

TEST(Result, ArrowOperator) {
  Result<std::string> text = std::string("hello");
  EXPECT_EQ(text->size(), 5u);
}

}  // namespace
}  // namespace pdm
