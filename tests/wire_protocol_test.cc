// Wire-protocol tests: what SQL each strategy actually ships, asserted
// through the server's statement log.

#include <gtest/gtest.h>

#include "client/experiment.h"

namespace pdm::client {
namespace {

using model::ActionKind;
using model::StrategyKind;

class WireProtocolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ExperimentConfig config;
    config.generator.depth = 2;
    config.generator.branching = 3;
    config.generator.sigma = 1.0;
    Result<std::unique_ptr<Experiment>> experiment =
        Experiment::Create(config);
    ASSERT_TRUE(experiment.ok()) << experiment.status();
    experiment_ = std::move(*experiment);
    experiment_->server().EnableStatementLog(true);
  }

  // By value: statement_log() returns a snapshot copy of the ring.
  std::vector<DbServer::StatementLogEntry> Log() {
    return experiment_->server().statement_log();
  }

  std::unique_ptr<Experiment> experiment_;
};

TEST_F(WireProtocolTest, RecursiveMleShipsExactlyOneStatement) {
  ASSERT_TRUE(experiment_
                  ->RunAction(StrategyKind::kRecursive,
                              ActionKind::kMultiLevelExpand)
                  .ok());
  ASSERT_EQ(Log().size(), 1u);
  const std::string sql = Log()[0].sql;
  EXPECT_NE(sql.find("WITH RECURSIVE rtbl"), std::string::npos);
  EXPECT_NE(sql.find("UNION"), std::string::npos);
  EXPECT_NE(sql.find("ORDER BY 1, 2"), std::string::npos);
  // All 13 objects + 12 links in one response.
  EXPECT_EQ(Log()[0].result_rows, 25u);
}

TEST_F(WireProtocolTest, NavigationalMleShipsOneExpandPerVisibleNode) {
  ASSERT_TRUE(experiment_
                  ->RunAction(StrategyKind::kNavigationalEarly,
                              ActionKind::kMultiLevelExpand)
                  .ok());
  // 1 (root) + 12 visible nodes, σ=1.
  ASSERT_EQ(Log().size(), 13u);
  for (const DbServer::StatementLogEntry& entry : Log()) {
    EXPECT_NE(entry.sql.find("FROM link JOIN"), std::string::npos);
    EXPECT_NE(entry.sql.find("link.left ="), std::string::npos);
    EXPECT_EQ(entry.sql.find("WITH RECURSIVE"), std::string::npos);
  }
  // Expand responses: root + 3 internals return 3 rows, leaves return 0.
  size_t total_rows = 0;
  for (const DbServer::StatementLogEntry& entry : Log()) {
    total_rows += entry.result_rows;
  }
  EXPECT_EQ(total_rows, 12u);
}

TEST_F(WireProtocolTest, EarlyEvaluationPutsRulesInTheShippedText) {
  ASSERT_TRUE(experiment_
                  ->RunAction(StrategyKind::kNavigationalEarly,
                              ActionKind::kQuery)
                  .ok());
  ASSERT_EQ(Log().size(), 1u);
  // The acc rule travels with the statement — evaluated at the server.
  EXPECT_NE(Log()[0].sql.find("acc = '+'"), std::string::npos);

  experiment_->server().ClearStatementLog();
  ASSERT_TRUE(experiment_
                  ->RunAction(StrategyKind::kNavigationalLate,
                              ActionKind::kQuery)
                  .ok());
  ASSERT_EQ(Log().size(), 1u);
  // Late evaluation ships the bare query; filtering happens client-side.
  EXPECT_EQ(Log()[0].sql.find("acc = '+'"), std::string::npos);
}

TEST_F(WireProtocolTest, StoredProcedureCheckOutIsASingleCall) {
  std::unique_ptr<CheckOutClient> checkout =
      experiment_->MakeCheckOutClient();
  ASSERT_TRUE(checkout
                  ->CheckOut(experiment_->product().root_obid,
                             CheckOutMethod::kStoredProcedure)
                  ->success);
  ASSERT_EQ(Log().size(), 1u);
  EXPECT_NE(Log()[0].sql.find("CALL pdm_checkout("), std::string::npos);
}

TEST_F(WireProtocolTest, BatchedCheckOutShipsRetrievalPlusTwoUpdates) {
  std::unique_ptr<CheckOutClient> checkout =
      experiment_->MakeCheckOutClient();
  ASSERT_TRUE(checkout
                  ->CheckOut(experiment_->product().root_obid,
                             CheckOutMethod::kRecursiveBatched)
                  ->success);
  ASSERT_EQ(Log().size(), 3u);
  EXPECT_NE(Log()[0].sql.find("WITH RECURSIVE"), std::string::npos);
  EXPECT_NE(Log()[1].sql.find("UPDATE assy SET checkedout = TRUE"),
            std::string::npos);
  EXPECT_NE(Log()[2].sql.find("UPDATE comp SET checkedout = TRUE"),
            std::string::npos);
  // The check-out ∀rows rule traveled inside the retrieval text.
  EXPECT_NE(Log()[0].sql.find("NOT EXISTS (SELECT * FROM rtbl"),
            std::string::npos);
}

TEST_F(WireProtocolTest, LogCapturesSizesAndCanBeDisabled) {
  ASSERT_TRUE(experiment_
                  ->RunAction(StrategyKind::kRecursive,
                              ActionKind::kMultiLevelExpand)
                  .ok());
  ASSERT_EQ(Log().size(), 1u);
  EXPECT_GT(Log()[0].response_bytes, 0u);

  experiment_->server().ClearStatementLog();
  experiment_->server().EnableStatementLog(false);
  ASSERT_TRUE(experiment_
                  ->RunAction(StrategyKind::kRecursive,
                              ActionKind::kMultiLevelExpand)
                  .ok());
  EXPECT_TRUE(Log().empty());
}

}  // namespace
}  // namespace pdm::client
