// Tests for the multi-site replica topology (DESIGN.md 5l): RNG stream
// splitting (the SplitMix64 gamma-overlap hazard), arrival-schedule
// determinism across thread counts and real thread interleavings, the
// replication staleness bound and its closed-form reconciliation,
// read-your-writes at the primary, byte-identical replica state after
// quiesce, and a TSan canary racing the log applier against replica
// readers and version GC.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "client/multisite.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "engine/database.h"
#include "model/cost_model.h"
#include "net/replication.h"
#include "pdm/generator.h"
#include "pdm/pdm_schema.h"
#include "server/replica.h"

namespace pdm {
namespace {

using client::ArrivalEvent;
using client::GenerateArrivalSchedule;
using client::MultiSiteDeployment;
using client::MultiSiteOptions;
using client::MultiSiteResult;
using client::SiteSpec;

// --- RNG stream splitting ----------------------------------------------

TEST(RngStreamSplit, NaiveGammaOffsetSeedsOverlap) {
  // The hazard ForStream exists to avoid: SplitMix64 advances its state
  // by the golden gamma per draw, so seeding stream k at seed + k*gamma
  // makes stream 1 literally the tail of stream 0.
  constexpr uint64_t kGamma = 0x9e3779b97f4a7c15ULL;
  Rng a(42);
  Rng b(42 + kGamma);
  (void)a.Next();  // drop one draw: a's sequence is now b's sequence
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngStreamSplit, ForStreamStreamsDoNotOverlapUnderShifts) {
  // ForStream keys the seed through an avalanche mix, so adjacent
  // streams are not shifted copies of each other. Probe a window of
  // relative shifts on a pair of adjacent streams.
  constexpr size_t kDraws = 64;
  std::vector<uint64_t> s0;
  std::vector<uint64_t> s1;
  Rng r0 = Rng::ForStream(42, 0);
  Rng r1 = Rng::ForStream(42, 1);
  for (size_t i = 0; i < kDraws; ++i) {
    s0.push_back(r0.Next());
    s1.push_back(r1.Next());
  }
  for (size_t shift = 0; shift < 16; ++shift) {
    bool identical_forward = true;
    bool identical_backward = true;
    for (size_t i = 0; i + shift < kDraws; ++i) {
      if (s0[i + shift] != s1[i]) identical_forward = false;
      if (s1[i + shift] != s0[i]) identical_backward = false;
    }
    EXPECT_FALSE(identical_forward) << "shift=" << shift;
    EXPECT_FALSE(identical_backward) << "shift=" << shift;
  }
}

TEST(RngStreamSplit, ReproducibleAndKeyedOnLogicalIdOnly) {
  // Same (seed, stream) -> same draws, different stream or seed ->
  // different draws. Nothing else (thread ids, call order) enters.
  Rng a = Rng::ForStream(7, 3);
  Rng b = Rng::ForStream(7, 3);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(Rng::ForStream(7, 4).Next(), Rng::ForStream(7, 3).Next());
  EXPECT_NE(Rng::ForStream(8, 3).Next(), Rng::ForStream(7, 3).Next());
}

// --- Arrival-schedule determinism --------------------------------------

SiteSpec SmallSite(const std::string& name) {
  SiteSpec site;
  site.name = name;
  site.wan.latency_s = 0.1;
  site.wan.dtr_kbit = 256;
  site.lan.latency_s = 0.001;
  site.lan.dtr_kbit = 10 * 1024;
  site.clients = 200;
  site.arrival_rate_hz = 20;
  site.arrivals = 60;
  site.write_fraction = 0.1;
  return site;
}

bool SchedulesIdentical(const std::vector<ArrivalEvent>& a,
                        const std::vector<ArrivalEvent>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].arrival_s != b[i].arrival_s) return false;
    if (a[i].client_id != b[i].client_id) return false;
    if (a[i].is_write != b[i].is_write) return false;
  }
  return true;
}

TEST(ArrivalSchedule, IdenticalAcrossThreadCountAndInterleaving) {
  // The schedule is a pure function of (seed, site index, spec): a
  // batch_threads change must not move a single arrival, and neither
  // may real thread interleaving — 8 threads generating the same
  // schedule concurrently all produce the reference byte for byte.
  const SiteSpec site = SmallSite("emea");
  const std::vector<ArrivalEvent> reference =
      GenerateArrivalSchedule(site, 0, 42);
  ASSERT_EQ(reference.size(), site.arrivals);

  constexpr int kThreads = 8;
  std::vector<std::vector<ArrivalEvent>> produced(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&site, &produced, t] {
      produced[static_cast<size_t>(t)] = GenerateArrivalSchedule(site, 0, 42);
    });
  }
  for (std::thread& t : threads) t.join();
  for (const std::vector<ArrivalEvent>& schedule : produced) {
    EXPECT_TRUE(SchedulesIdentical(schedule, reference));
  }
}

TEST(ArrivalSchedule, SitesDrawIndependentStreams) {
  const SiteSpec site = SmallSite("x");
  const std::vector<ArrivalEvent> s0 = GenerateArrivalSchedule(site, 0, 42);
  const std::vector<ArrivalEvent> s1 = GenerateArrivalSchedule(site, 1, 42);
  EXPECT_FALSE(SchedulesIdentical(s0, s1));
  // Interarrival draws are exponential with the configured rate; the
  // mean over 60 draws should land in a generous window around 1/rate.
  double sum = 0;
  double prev = 0;
  for (const ArrivalEvent& event : s0) {
    sum += event.arrival_s - prev;
    prev = event.arrival_s;
    EXPECT_LT(event.client_id, site.clients);
  }
  const double mean = sum / static_cast<double>(s0.size());
  EXPECT_GT(mean, 0.5 / site.arrival_rate_hz);
  EXPECT_LT(mean, 2.0 / site.arrival_rate_hz);
}

// --- Replication -------------------------------------------------------

MultiSiteOptions SmallDeployment(size_t sites, size_t batch_threads = 1) {
  MultiSiteOptions options;
  options.generator.depth = 2;
  options.generator.branching = 4;
  options.generator.sigma = 0.6;
  options.seed = 42;
  options.batch_threads = batch_threads;
  for (size_t s = 0; s < sites; ++s) {
    SiteSpec site = SmallSite(StrFormat("site%zu", s));
    site.arrivals = 40;
    options.sites.push_back(site);
  }
  return options;
}

TEST(MultiSite, StalenessBoundedAndClosedFormReconciles) {
  Result<std::unique_ptr<MultiSiteDeployment>> deployment =
      MultiSiteDeployment::Create(SmallDeployment(2));
  ASSERT_TRUE(deployment.ok()) << deployment.status();
  Result<MultiSiteResult> run = (*deployment)->RunOpenLoop();
  ASSERT_TRUE(run.ok()) << run.status();

  for (const client::SiteReport& site : run->sites) {
    ASSERT_GT(site.writes, 0u) << site.name;
    EXPECT_GT(site.shipments, 0u) << site.name;
    // Lower bound: no shipment can beat one WAN round trip. Upper
    // bound: the coalescing pump keeps at most one shipment queued
    // behind the in-flight one, so lag is bounded by a small multiple
    // of the worst single-shipment time — 10 simulated seconds is
    // generous at these link parameters.
    EXPECT_GE(site.mean_lag_s, 2 * 0.1) << site.name;
    EXPECT_LE(site.max_lag_s, 10.0) << site.name;
    // Non-queued shipments must land on the closed form within 1%.
    EXPECT_LE(site.staleness_model_err_pct, 1.0) << site.name;
    EXPECT_EQ(site.applied_commit_ts, run->primary_commit_ts) << site.name;
  }
  EXPECT_TRUE((*deployment)->VerifyReplicaConsistency().ok());
}

TEST(MultiSite, ClosedFormMatchesIdleChannelShipment) {
  // One shipment on an idle channel IS the closed form: assemble the
  // same numbers through ReplicationChannel and through
  // model::ReplicaStalenessSeconds and compare exactly.
  net::WanConfig wan;
  wan.latency_s = 0.2;
  wan.dtr_kbit = 128;
  wan.site = "closed-form";
  net::ReplicationChannel channel(wan);
  const size_t payload = 777;
  const double apply_s = 3.0e-4;
  net::ReplicationShipment shipment =
      channel.Ship(payload, /*n_statements=*/3, /*commit_s=*/5.0, apply_s);
  ASSERT_FALSE(shipment.queued);

  model::NetworkParams net;
  net.latency_s = wan.latency_s;
  net.dtr_kbit = wan.dtr_kbit;
  net.packet_bytes = static_cast<double>(wan.packet_bytes);
  const double predicted = model::ReplicaStalenessSeconds(
      net, static_cast<double>(payload), apply_s);
  EXPECT_NEAR(shipment.lag_seconds(), predicted, 1e-12);
}

TEST(MultiSite, ReadYourWritesAtPrimaryAndLaggedReplica) {
  Result<std::unique_ptr<MultiSiteDeployment>> created =
      MultiSiteDeployment::Create(SmallDeployment(1));
  ASSERT_TRUE(created.ok()) << created.status();
  MultiSiteDeployment& deployment = **created;

  const int64_t target = deployment.primary().product().root_obid + 1;
  const std::string update = StrFormat(
      "UPDATE %s SET checkedout = TRUE WHERE obid = %lld", pdmsys::kAssyTable,
      static_cast<long long>(target));
  const std::string probe =
      StrFormat("SELECT checkedout FROM %s WHERE obid = %lld",
                pdmsys::kAssyTable, static_cast<long long>(target));

  // Write through to the primary over the site's write connection.
  ResultSet out;
  ASSERT_TRUE(deployment.write_connection(0).Execute(update, &out).ok());
  ASSERT_EQ(out.affected_rows, 1u);

  // Read-your-writes at the primary: the next primary read sees it.
  Result<ResultSet> at_primary =
      deployment.primary().server().database().Query(probe);
  ASSERT_TRUE(at_primary.ok()) << at_primary.status();
  ASSERT_EQ(at_primary->num_rows(), 1u);
  EXPECT_TRUE(at_primary->At(0, 0).bool_value());

  // The replica has not pumped: a local read still sees the old value —
  // a consistent snapshot at a lagged timestamp, not a torn state.
  ReplicaServer& replica = deployment.replica(0);
  EXPECT_EQ(replica.StalenessCommits(), 1u);
  Result<ResultSet> stale = replica.database().Query(probe);
  ASSERT_TRUE(stale.ok()) << stale.status();
  EXPECT_FALSE(stale->At(0, 0).bool_value());

  // After the pump the write is visible locally too.
  Result<ReplicaServer::PumpResult> pumped = replica.PumpReplication();
  ASSERT_TRUE(pumped.ok()) << pumped.status();
  EXPECT_EQ(pumped->applied, 1u);
  EXPECT_EQ(replica.StalenessCommits(), 0u);
  Result<ResultSet> fresh = replica.database().Query(probe);
  ASSERT_TRUE(fresh.ok()) << fresh.status();
  EXPECT_TRUE(fresh->At(0, 0).bool_value());
}

TEST(MultiSite, ReplicaExpandByteIdenticalToQuiescedPrimary) {
  MultiSiteOptions options = SmallDeployment(3);
  Result<std::unique_ptr<MultiSiteDeployment>> created =
      MultiSiteDeployment::Create(options);
  ASSERT_TRUE(created.ok()) << created.status();
  MultiSiteDeployment& deployment = **created;
  Result<MultiSiteResult> run = deployment.RunOpenLoop();
  ASSERT_TRUE(run.ok()) << run.status();
  // VerifyReplicaConsistency asserts the expand trees AND the full
  // replicated table contents (checkedout flags included) match the
  // quiesced primary byte for byte at every site.
  Status verified = deployment.VerifyReplicaConsistency();
  EXPECT_TRUE(verified.ok()) << verified;
}

// TSan canary: the log applier replays primary commits while replica
// readers run snapshot queries and version GC prunes — the DESIGN.md 5l
// claim that the applier may race readers and GC freely. Run under
// -fsanitize=thread to turn latent races into failures; race-free
// execution and a caught-up, consistent replica are the assertions here.
TEST(MultiSite, ApplierRacesReplicaReadersAndGc) {
  Result<std::unique_ptr<MultiSiteDeployment>> created =
      MultiSiteDeployment::Create(SmallDeployment(1));
  ASSERT_TRUE(created.ok()) << created.status();
  MultiSiteDeployment& deployment = **created;
  ReplicaServer& replica = deployment.replica(0);
  Database& primary = deployment.primary().server().database();

  const int64_t target = deployment.primary().product().root_obid + 1;
  constexpr int kWrites = 60;

  std::atomic<bool> writer_done{false};
  std::atomic<bool> stop_readers{false};

  std::thread writer([&] {
    for (int i = 0; i < kWrites; ++i) {
      ResultSet out;
      Status status = primary.Execute(
          StrFormat("UPDATE %s SET checkedout = %s WHERE obid = %lld",
                    pdmsys::kAssyTable, i % 2 == 0 ? "TRUE" : "FALSE",
                    static_cast<long long>(target)),
          &out);
      ASSERT_TRUE(status.ok()) << status;
    }
    writer_done.store(true, std::memory_order_release);
  });

  std::thread applier([&] {
    while (!writer_done.load(std::memory_order_acquire) ||
           replica.StalenessCommits() > 0) {
      Result<ReplicaServer::PumpResult> pumped = replica.PumpReplication();
      ASSERT_TRUE(pumped.ok()) << pumped.status();
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      const std::string probe =
          StrFormat("SELECT checkedout FROM %s WHERE obid = %lld",
                    pdmsys::kAssyTable, static_cast<long long>(target));
      while (!stop_readers.load(std::memory_order_acquire)) {
        Result<ResultSet> result = replica.database().Query(probe);
        ASSERT_TRUE(result.ok()) << result.status();
        ASSERT_EQ(result->num_rows(), 1u);
      }
    });
  }
  std::thread gc([&] {
    while (!stop_readers.load(std::memory_order_acquire)) {
      replica.database().GarbageCollectVersions();
      std::this_thread::yield();
    }
  });

  writer.join();
  applier.join();
  stop_readers.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  gc.join();

  EXPECT_EQ(replica.StalenessCommits(), 0u);
  EXPECT_EQ(replica.applied_commit_ts(), primary.commit_clock());
  // Final states agree: last write set checkedout = FALSE.
  Result<ResultSet> final_state = replica.database().Query(
      StrFormat("SELECT checkedout FROM %s WHERE obid = %lld",
                pdmsys::kAssyTable, static_cast<long long>(target)));
  ASSERT_TRUE(final_state.ok()) << final_state.status();
  EXPECT_FALSE(final_state->At(0, 0).bool_value());
}

}  // namespace
}  // namespace pdm
