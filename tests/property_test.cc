// Property-style tests: invariants of the closed-form model over a
// parameter sweep, and simulation-vs-model agreement across shapes.

#include <gtest/gtest.h>

#include "client/experiment.h"
#include "model/cost_model.h"

namespace pdm {
namespace {

using model::ActionKind;
using model::NetworkParams;
using model::Predict;
using model::ResponseTime;
using model::StrategyKind;
using model::TreeParams;

struct SweepCase {
  TreeParams tree;
  NetworkParams net;
};

class ModelPropertySweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(ModelPropertySweep, StrategyOrderingHolds) {
  const SweepCase& c = GetParam();
  for (ActionKind action : {ActionKind::kQuery, ActionKind::kSingleLevelExpand,
                            ActionKind::kMultiLevelExpand}) {
    ResponseTime late =
        Predict(StrategyKind::kNavigationalLate, action, c.tree, c.net);
    ResponseTime early =
        Predict(StrategyKind::kNavigationalEarly, action, c.tree, c.net);
    ResponseTime rec = Predict(StrategyKind::kRecursive, action, c.tree, c.net);
    // Early evaluation never ships more data; recursion never uses more
    // round trips.
    EXPECT_LE(early.total(), late.total() + 1e-9);
    EXPECT_LE(rec.total(), early.total() + 1e-9);
    EXPECT_GT(rec.total(), 0.0);
    // Latency split: recursion always exactly one round trip pair.
    EXPECT_NEAR(rec.latency_part, 2 * c.net.latency_s, 1e-12);
    EXPECT_GE(late.latency_part, rec.latency_part - 1e-12);
  }
}

TEST_P(ModelPropertySweep, SavingsAreBounded) {
  const SweepCase& c = GetParam();
  ResponseTime late = Predict(StrategyKind::kNavigationalLate,
                              ActionKind::kMultiLevelExpand, c.tree, c.net);
  ResponseTime rec = Predict(StrategyKind::kRecursive,
                             ActionKind::kMultiLevelExpand, c.tree, c.net);
  double saving = model::SavingPercent(late, rec);
  EXPECT_GE(saving, 0.0);
  EXPECT_LT(saving, 100.0);
}

TEST_P(ModelPropertySweep, MonotoneInNetworkParameters) {
  const SweepCase& c = GetParam();
  NetworkParams faster = c.net;
  faster.dtr_kbit *= 2;
  NetworkParams closer = c.net;
  closer.latency_s /= 2;
  for (StrategyKind strategy :
       {StrategyKind::kNavigationalLate, StrategyKind::kRecursive}) {
    ResponseTime base =
        Predict(strategy, ActionKind::kMultiLevelExpand, c.tree, c.net);
    ResponseTime wide =
        Predict(strategy, ActionKind::kMultiLevelExpand, c.tree, faster);
    ResponseTime near =
        Predict(strategy, ActionKind::kMultiLevelExpand, c.tree, closer);
    EXPECT_LE(wide.total(), base.total() + 1e-9);
    EXPECT_LE(near.total(), base.total() + 1e-9);
    // Doubling bandwidth halves exactly the transfer part.
    EXPECT_NEAR(wide.transfer_part * 2, base.transfer_part, 1e-9);
    EXPECT_NEAR(near.latency_part * 2, base.latency_part, 1e-9);
  }
}

TEST_P(ModelPropertySweep, NodeCountIdentities) {
  const SweepCase& c = GetParam();
  // n_v <= total; early never transmits more than late, per action.
  EXPECT_LE(model::VisibleNodes(c.tree), model::TotalNodes(c.tree) + 1e-9);
  for (ActionKind action : {ActionKind::kQuery, ActionKind::kSingleLevelExpand,
                            ActionKind::kMultiLevelExpand}) {
    double late = model::TransmittedNodes(StrategyKind::kNavigationalLate,
                                          action, c.tree);
    double early = model::TransmittedNodes(StrategyKind::kNavigationalEarly,
                                           action, c.tree);
    EXPECT_LE(early, late + 1e-9);
  }
  // Full visibility collapses early and late volumes.
  TreeParams all_visible = c.tree;
  all_visible.sigma = 1.0;
  EXPECT_NEAR(model::TransmittedNodes(StrategyKind::kNavigationalEarly,
                                      ActionKind::kQuery, all_visible),
              model::TotalNodes(all_visible), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ModelPropertySweep,
    ::testing::Values(
        SweepCase{{3, 9, 0.6}, {0.15, 256, 4096, 512}},
        SweepCase{{9, 3, 0.6}, {0.15, 512, 4096, 512}},
        SweepCase{{7, 5, 0.6}, {0.05, 1024, 4096, 512}},
        SweepCase{{2, 2, 0.5}, {0.01, 64, 1024, 128}},
        SweepCase{{5, 4, 0.9}, {0.3, 128, 4096, 2048}},
        SweepCase{{4, 6, 0.1}, {0.5, 2048, 8192, 512}},
        SweepCase{{1, 1, 1.0}, {0.15, 256, 4096, 512}}),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      return "d" + std::to_string(info.param.tree.depth) + "b" +
             std::to_string(info.param.tree.branching) + "i" +
             std::to_string(info.index);
    });

// --- Simulation vs model across shapes ---------------------------------------

class SimulationAgreementSweep
    : public ::testing::TestWithParam<TreeParams> {};

TEST_P(SimulationAgreementSweep, CountsMatchModelExactlyOrClosely) {
  TreeParams tree = GetParam();
  client::ExperimentConfig config;
  config.generator.depth = tree.depth;
  config.generator.branching = tree.branching;
  config.generator.sigma = tree.sigma;
  config.wan.latency_s = 0.15;
  config.wan.dtr_kbit = 256;
  Result<std::unique_ptr<client::Experiment>> experiment =
      client::Experiment::Create(config);
  ASSERT_TRUE(experiment.ok()) << experiment.status();
  client::Experiment& e = **experiment;

  NetworkParams net{0.15, 256, 4096, 512};
  // Round trips are exact: MLE navigational = visible + 1; recursive = 1.
  Result<client::ActionResult> late = e.RunAction(
      StrategyKind::kNavigationalLate, ActionKind::kMultiLevelExpand);
  ASSERT_TRUE(late.ok()) << late.status();
  EXPECT_EQ(late->wan.round_trips, e.product().visible_nodes + 1);

  Result<client::ActionResult> rec =
      e.RunAction(StrategyKind::kRecursive, ActionKind::kMultiLevelExpand);
  ASSERT_TRUE(rec.ok()) << rec.status();
  EXPECT_EQ(rec->wan.round_trips, 1u);
  EXPECT_EQ(rec->visible_nodes, e.product().visible_nodes);

  // Simulated totals stay within 25% of the closed form (integral σ).
  ResponseTime predicted = Predict(StrategyKind::kNavigationalLate,
                                   ActionKind::kMultiLevelExpand, tree, net);
  EXPECT_NEAR(late->seconds(), predicted.total(),
              0.25 * predicted.total() + 0.2);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SimulationAgreementSweep,
    ::testing::Values(TreeParams{2, 2, 0.5}, TreeParams{3, 3, 1.0},
                      TreeParams{3, 9, 0.6}, TreeParams{4, 4, 0.5},
                      TreeParams{5, 3, 0.6}, TreeParams{6, 2, 0.5}),
    [](const ::testing::TestParamInfo<TreeParams>& info) {
      return "d" + std::to_string(info.param.depth) + "b" +
             std::to_string(info.param.branching) + "i" +
             std::to_string(info.index);
    });

}  // namespace
}  // namespace pdm
