// Tests for views (incl. the Section 5.5 hidden-structure limitation),
// EXPLAIN, and depth-limited recursive expands.

#include <gtest/gtest.h>

#include "client/experiment.h"
#include "engine/database.h"
#include "rules/query_builder.h"
#include "rules/query_modificator.h"
#include "sql/parser.h"

namespace pdm {
namespace {

class ViewsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.ExecuteScript(R"sql(
      CREATE TABLE t (a INTEGER, b VARCHAR);
      INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, 'x');
    )sql")
                    .ok());
  }

  ResultSet Q(const std::string& sql) {
    Result<ResultSet> result = db_.Query(sql);
    EXPECT_TRUE(result.ok()) << sql << " -> " << result.status();
    return std::move(result).ValueOr(ResultSet{});
  }

  Database db_;
};

TEST_F(ViewsTest, CreateQueryAndDropView) {
  ASSERT_TRUE(db_.Execute("CREATE VIEW xs AS SELECT a FROM t WHERE b = 'x'")
                  .ok());
  EXPECT_EQ(Q("SELECT COUNT(*) FROM xs").At(0, 0).int64_value(), 2);
  // Views compose with joins and aliases.
  EXPECT_EQ(Q("SELECT COUNT(*) FROM xs AS v JOIN t ON v.a = t.a")
                .At(0, 0)
                .int64_value(),
            2);
  ASSERT_TRUE(db_.Execute("DROP VIEW xs").ok());
  EXPECT_FALSE(db_.Query("SELECT * FROM xs").ok());
  EXPECT_EQ(db_.Execute("DROP VIEW xs").code(), StatusCode::kNotFound);
  EXPECT_TRUE(db_.Execute("DROP VIEW IF EXISTS xs").ok());
}

TEST_F(ViewsTest, ViewsSeeLiveData) {
  ASSERT_TRUE(db_.Execute("CREATE VIEW xs AS SELECT a FROM t WHERE b = 'x'")
                  .ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO t VALUES (4, 'x')").ok());
  EXPECT_EQ(Q("SELECT COUNT(*) FROM xs").At(0, 0).int64_value(), 3);
}

TEST_F(ViewsTest, OrReplaceAndDuplicates) {
  ASSERT_TRUE(db_.Execute("CREATE VIEW v AS SELECT a FROM t").ok());
  EXPECT_EQ(db_.Execute("CREATE VIEW v AS SELECT b FROM t").code(),
            StatusCode::kAlreadyExists);
  ASSERT_TRUE(
      db_.Execute("CREATE OR REPLACE VIEW v AS SELECT b FROM t").ok());
  EXPECT_EQ(Q("SELECT * FROM v").schema.column(0).name, "b");
}

TEST_F(ViewsTest, NameCollisionWithTableRejected) {
  EXPECT_EQ(db_.Execute("CREATE VIEW t AS SELECT 1").code(),
            StatusCode::kAlreadyExists);
}

TEST_F(ViewsTest, InvalidDefinitionRejectedAtCreation) {
  EXPECT_FALSE(db_.Execute("CREATE VIEW v AS SELECT nosuch FROM t").ok());
  EXPECT_FALSE(db_.Query("SELECT * FROM v").ok());  // nothing registered
}

TEST_F(ViewsTest, ViewsOverViewsAndCycleDetection) {
  ASSERT_TRUE(db_.Execute("CREATE VIEW v1 AS SELECT a FROM t").ok());
  ASSERT_TRUE(
      db_.Execute("CREATE VIEW v2 AS SELECT a FROM v1 WHERE a > 1").ok());
  EXPECT_EQ(Q("SELECT COUNT(*) FROM v2").At(0, 0).int64_value(), 2);

  // Redefining v1 over v2 creates a cycle; binding must detect it.
  ASSERT_TRUE(
      db_.Execute("CREATE OR REPLACE VIEW v1 AS SELECT a FROM v2").ok());
  Result<ResultSet> cyc = db_.Query("SELECT * FROM v1");
  ASSERT_FALSE(cyc.ok());
  EXPECT_NE(cyc.status().message().find("circular"), std::string::npos);
}

TEST_F(ViewsTest, ExplainShowsPlanRows) {
  ResultSet rs = Q("EXPLAIN SELECT a FROM t WHERE a = 2");
  ASSERT_GT(rs.num_rows(), 0u);
  EXPECT_EQ(rs.schema.column(0).name, "plan");
  std::string all;
  for (const Row& row : rs.rows) all += row[0].string_value() + "\n";
  EXPECT_NE(all.find("Project"), std::string::npos);
  EXPECT_NE(all.find("Scan(t)"), std::string::npos);
  EXPECT_NE(all.find("[filtered]"), std::string::npos);
}

TEST_F(ViewsTest, ExplainShowsRecursiveCtesAndJoins) {
  ASSERT_TRUE(db_.ExecuteScript(R"sql(
    CREATE TABLE edge (src INTEGER, dst INTEGER);
  )sql")
                  .ok());
  ResultSet rs = Q(
      "EXPLAIN WITH RECURSIVE r (n) AS (SELECT 1 UNION "
      "SELECT edge.dst FROM r JOIN edge ON r.n = edge.src) "
      "SELECT * FROM r");
  std::string all;
  for (const Row& row : rs.rows) all += row[0].string_value() + "\n";
  EXPECT_NE(all.find("RecursiveCTE r:"), std::string::npos);
  EXPECT_NE(all.find("recursive term 1"), std::string::npos);
  EXPECT_NE(all.find("HashJoin"), std::string::npos);
  EXPECT_NE(all.find("CteScan(r)"), std::string::npos);
}

// --- The Section 5.5 view limitation ----------------------------------------

TEST(ViewLimitation, ModificatorRejectsQueriesOverViews) {
  rules::RuleTable rules;
  pdmsys::UserContext user;
  rules::QueryModificator modificator(&rules, user);
  modificator.SetKnownViews({"assy_view"});

  // Hand-written tree query whose recursive member reads from the view.
  Result<sql::StatementPtr> stmt = sql::ParseSql(R"sql(
    WITH RECURSIVE rtbl (obid) AS (
      SELECT obid FROM assy_view WHERE obid = 1
      UNION
      SELECT link.right FROM rtbl JOIN link ON rtbl.obid = link.left)
    SELECT obid FROM rtbl
  )sql");
  ASSERT_TRUE(stmt.ok());
  auto* select = static_cast<sql::SelectStmt*>(stmt->get());
  Result<rules::ModificationSummary> summary =
      modificator.ApplyToRecursiveQuery(select,
                                        rules::RuleAction::kMultiLevelExpand);
  ASSERT_FALSE(summary.ok());
  EXPECT_EQ(summary.status().code(), StatusCode::kNotImplemented);
  EXPECT_NE(summary.status().message().find("assy_view"), std::string::npos);
}

// --- Depth-limited recursive expands -----------------------------------------

TEST(PartialExpand, RetrievesExactlyTheRequestedLevels) {
  client::ExperimentConfig config;
  config.generator.depth = 4;
  config.generator.branching = 3;
  config.generator.sigma = 1.0;
  Result<std::unique_ptr<client::Experiment>> experiment =
      client::Experiment::Create(config);
  ASSERT_TRUE(experiment.ok()) << experiment.status();
  client::Experiment& e = **experiment;

  auto strategy = std::make_unique<client::RecursiveStrategy>(
      &e.connection(), &e.rule_table(), e.user(),
      client::ClientConfig{});
  for (int levels = 1; levels <= 4; ++levels) {
    Result<client::ActionResult> result =
        strategy->PartialExpand(e.product().root_obid, levels);
    ASSERT_TRUE(result.ok()) << result.status();
    size_t expected = 0;
    size_t width = 1;
    for (int i = 1; i <= levels; ++i) {
      width *= 3;
      expected += width;
    }
    EXPECT_EQ(result->visible_nodes, expected) << "levels=" << levels;
    EXPECT_EQ(result->tree.Depth(), static_cast<size_t>(levels));
    EXPECT_EQ(result->wan.round_trips, 1u);
  }
  EXPECT_FALSE(strategy->PartialExpand(e.product().root_obid, 0).ok());
}

TEST(PartialExpand, DepthBoundComposesWithRules) {
  client::ExperimentConfig config;
  config.generator.depth = 3;
  config.generator.branching = 4;
  config.generator.sigma = 0.5;
  Result<std::unique_ptr<client::Experiment>> experiment =
      client::Experiment::Create(config);
  ASSERT_TRUE(experiment.ok());
  client::Experiment& e = **experiment;

  auto strategy = std::make_unique<client::RecursiveStrategy>(
      &e.connection(), &e.rule_table(), e.user(), client::ClientConfig{});
  Result<client::ActionResult> result =
      strategy->PartialExpand(e.product().root_obid, 2);
  ASSERT_TRUE(result.ok()) << result.status();
  size_t expected = e.product().visible_per_level[1] +
                    e.product().visible_per_level[2];
  EXPECT_EQ(result->visible_nodes, expected);
}

}  // namespace
}  // namespace pdm
