// Robustness tests: error paths carry the right status codes, malformed
// and adversarial inputs fail cleanly, and deeply nested / large inputs
// don't break the engine.

#include <gtest/gtest.h>

#include "engine/database.h"

namespace pdm {
namespace {

class RobustnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.ExecuteScript(R"sql(
      CREATE TABLE t (a INTEGER, b VARCHAR);
      INSERT INTO t VALUES (1, 'x');
    )sql")
                    .ok());
  }

  StatusCode CodeOf(const std::string& sql) {
    Result<ResultSet> result = db_.Query(sql);
    return result.ok() ? StatusCode::kOk : result.status().code();
  }

  Database db_;
};

TEST_F(RobustnessTest, StatusCodesAreSpecific) {
  EXPECT_EQ(CodeOf("SELEC 1"), StatusCode::kParseError);
  EXPECT_EQ(CodeOf("SELECT * FROM missing"), StatusCode::kBindError);
  EXPECT_EQ(CodeOf("SELECT nosuch FROM t"), StatusCode::kBindError);
  EXPECT_EQ(CodeOf("SELECT 1 / 0"), StatusCode::kExecutionError);
  EXPECT_EQ(CodeOf("SELECT 1"), StatusCode::kOk);
}

TEST_F(RobustnessTest, DeeplyNestedExpressionsParseAndEvaluate) {
  std::string expr = "1";
  for (int i = 0; i < 200; ++i) expr = "(" + expr + " + 1)";
  Result<ResultSet> result = db_.Query("SELECT " + expr);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->At(0, 0).int64_value(), 201);
}

TEST_F(RobustnessTest, DeeplyNestedSubqueriesWork) {
  std::string sql = "SELECT a FROM t";
  for (int i = 0; i < 20; ++i) {
    sql = "SELECT a FROM (" + sql + ") AS s" + std::to_string(i);
  }
  Result<ResultSet> result = db_.Query(sql);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->At(0, 0).int64_value(), 1);
}

TEST_F(RobustnessTest, ManyColumnsAndWideRows) {
  std::string create = "CREATE TABLE wide (c0 INTEGER";
  std::string insert_cols = "INSERT INTO wide VALUES (0";
  for (int i = 1; i < 100; ++i) {
    create += ", c" + std::to_string(i) + " INTEGER";
    insert_cols += ", " + std::to_string(i);
  }
  ASSERT_TRUE(db_.Execute(create + ")").ok());
  ASSERT_TRUE(db_.Execute(insert_cols + ")").ok());
  Result<ResultSet> result = db_.Query("SELECT * FROM wide");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_columns(), 100u);
  EXPECT_EQ(result->At(0, 99).int64_value(), 99);
}

TEST_F(RobustnessTest, StringsWithQuotesAndSpecialCharsRoundTrip) {
  ASSERT_TRUE(
      db_.Execute("INSERT INTO t VALUES (2, 'it''s a \"test\"; -- not a "
                  "comment')")
          .ok());
  Result<ResultSet> result = db_.Query("SELECT b FROM t WHERE a = 2");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->At(0, 0).string_value(),
            "it's a \"test\"; -- not a comment");
  // And back out through a literal comparison.
  Result<ResultSet> again = db_.Query(
      "SELECT a FROM t WHERE b = 'it''s a \"test\"; -- not a comment'");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->num_rows(), 1u);
}

TEST_F(RobustnessTest, EmptyTablesBehave) {
  ASSERT_TRUE(db_.Execute("DELETE FROM t").ok());
  EXPECT_EQ(db_.Query("SELECT * FROM t")->num_rows(), 0u);
  EXPECT_EQ(db_.Query("SELECT COUNT(*) FROM t")->At(0, 0).int64_value(), 0);
  EXPECT_EQ(db_.Query("SELECT * FROM t AS a, t AS b")->num_rows(), 0u);
  EXPECT_EQ(db_.Query("SELECT a FROM t GROUP BY a")->num_rows(), 0u);
  EXPECT_EQ(db_.Query("SELECT DISTINCT a FROM t ORDER BY 1")->num_rows(),
            0u);
}

TEST_F(RobustnessTest, SelfJoinManyTimes) {
  // 5-way self cross join of a 1-row table.
  Result<ResultSet> result = db_.Query(
      "SELECT COUNT(*) FROM t AS a, t AS b, t AS c, t AS d, t AS e");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->At(0, 0).int64_value(), 1);
}

TEST_F(RobustnessTest, LongUnionChain) {
  std::string sql = "SELECT 0";
  for (int i = 1; i <= 64; ++i) sql += " UNION SELECT " + std::to_string(i);
  Result<ResultSet> result = db_.Query(sql);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->num_rows(), 65u);
}

TEST_F(RobustnessTest, KeywordsAsQuotedAliasesWork) {
  Result<ResultSet> result =
      db_.Query("SELECT a AS \"SELECT\", b AS \"FROM\" FROM t");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->schema.column(0).name, "SELECT");
}

TEST_F(RobustnessTest, WhitespaceAndCommentsAnywhere) {
  Result<ResultSet> result = db_.Query(
      "/* lead */ SELECT -- one\n a /* mid */ FROM\n\tt -- done");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->num_rows(), 1u);
}

TEST_F(RobustnessTest, RecursionBombIsBounded) {
  ASSERT_TRUE(db_.ExecuteScript(R"sql(
    CREATE TABLE loop (x INTEGER);
    INSERT INTO loop VALUES (1);
  )sql")
                  .ok());
  db_.options().exec.max_recursion_iterations = 100;
  // Strictly growing values never converge; the bound must fire.
  Result<ResultSet> result = db_.Query(R"sql(
    WITH RECURSIVE r (x) AS (
      SELECT 1 UNION SELECT r.x + 1 FROM r JOIN loop ON 1 = 1)
    SELECT COUNT(*) FROM r
  )sql");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kExecutionError);
}

TEST_F(RobustnessTest, ErrorMessagesNameTheProblem) {
  Result<ResultSet> bad = db_.Query("SELECT t.a + missing.b FROM t");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("missing.b"), std::string::npos);

  Result<ResultSet> ambiguous =
      db_.Query("SELECT a FROM t AS x, t AS y");
  ASSERT_FALSE(ambiguous.ok());
  EXPECT_NE(ambiguous.status().message().find("ambiguous"),
            std::string::npos);
}

TEST_F(RobustnessTest, ResultSetRendering) {
  ASSERT_TRUE(db_.Execute("INSERT INTO t VALUES (NULL, NULL)").ok());
  ResultSet rs = *db_.Query("SELECT * FROM t ORDER BY 1");
  std::string text = rs.ToString();
  EXPECT_NE(text.find("a"), std::string::npos);
  EXPECT_NE(text.find("NULL"), std::string::npos);
  // Truncation marker.
  std::string truncated = rs.ToString(/*max_rows=*/1);
  EXPECT_NE(truncated.find("more row(s)"), std::string::npos);
}

}  // namespace
}  // namespace pdm
