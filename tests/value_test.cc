// Unit tests for Value, row hashing/equality and the string utilities.

#include <gtest/gtest.h>

#include <unordered_set>

#include "common/string_util.h"
#include "common/value.h"

namespace pdm {
namespace {

TEST(Value, KindsAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_TRUE(Value::Bool(true).bool_value());
  EXPECT_EQ(Value::Int64(42).int64_value(), 42);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).double_value(), 2.5);
  EXPECT_EQ(Value::String("abc").string_value(), "abc");
  EXPECT_TRUE(Value::Int64(1).is_numeric());
  EXPECT_TRUE(Value::Double(1).is_numeric());
  EXPECT_FALSE(Value::String("1").is_numeric());
}

TEST(Value, CrossKindNumericComparison) {
  EXPECT_TRUE(Value::Comparable(Value::Int64(1), Value::Double(1.0)));
  EXPECT_EQ(Value::Compare(Value::Int64(1), Value::Double(1.0)), 0);
  EXPECT_LT(Value::Compare(Value::Int64(1), Value::Double(1.5)), 0);
  EXPECT_GT(Value::Compare(Value::Double(2.5), Value::Int64(2)), 0);
}

TEST(Value, LargeIntegersCompareExactly) {
  // 2^53 + 1 is not representable as double; the int fast path must not
  // round.
  int64_t big = (1LL << 53) + 1;
  EXPECT_GT(Value::Compare(Value::Int64(big), Value::Int64(1LL << 53)), 0);
}

TEST(Value, StringsAndNumbersNeverEqual) {
  EXPECT_FALSE(Value::Comparable(Value::String("1"), Value::Int64(1)));
  Row a{Value::String("1")};
  Row b{Value::Int64(1)};
  EXPECT_FALSE(RowsEqual(a, b));
}

TEST(Value, NullOrderingAndEquality) {
  EXPECT_EQ(Value::Compare(Value::Null(), Value::Null()), 0);
  EXPECT_LT(Value::Compare(Value::Null(), Value::Int64(-100)), 0);
  // Rows with NULLs compare equal for grouping/DISTINCT purposes.
  Row a{Value::Null(), Value::Int64(1)};
  Row b{Value::Null(), Value::Int64(1)};
  EXPECT_TRUE(RowsEqual(a, b));
  EXPECT_EQ(HashRow(a), HashRow(b));
}

TEST(Value, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Int64(7).Hash(), Value::Double(7.0).Hash());
  std::unordered_set<Value, ValueHash, ValueEq> set;
  set.insert(Value::Int64(7));
  EXPECT_EQ(set.count(Value::Double(7.0)), 1u);
  EXPECT_EQ(set.count(Value::String("7")), 0u);
}

TEST(Value, ToStringForms) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Bool(true).ToString(), "TRUE");
  EXPECT_EQ(Value::Int64(-5).ToString(), "-5");
  EXPECT_EQ(Value::String("x").ToString(), "x");
}

TEST(Value, SqlLiteralEscaping) {
  EXPECT_EQ(Value::String("it's").ToSqlLiteral(), "'it''s'");
  EXPECT_EQ(Value::Int64(3).ToSqlLiteral(), "3");
  EXPECT_EQ(Value::Null().ToSqlLiteral(), "NULL");
}

TEST(Value, WireSizes) {
  EXPECT_EQ(Value::Null().WireSize(), 1u);
  EXPECT_EQ(Value::Int64(1).WireSize(), 8u);
  EXPECT_EQ(Value::String("abcd").WireSize(), 6u);  // 2 + 4
}

TEST(StringUtil, CaseMapping) {
  EXPECT_EQ(ToLowerAscii("AbC_9"), "abc_9");
  EXPECT_EQ(ToUpperAscii("aBc"), "ABC");
  EXPECT_TRUE(EqualsIgnoreCase("SELECT", "select"));
  EXPECT_FALSE(EqualsIgnoreCase("SELECT", "selec"));
}

TEST(StringUtil, JoinAndSplit) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  std::vector<std::string> parts = Split("a;;b", ';');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(StringUtil, Strip) {
  EXPECT_EQ(StripAscii("  x \n"), "x");
  EXPECT_EQ(StripAscii("\t\t"), "");
}

TEST(StringUtil, LikeMatching) {
  EXPECT_TRUE(SqlLikeMatch("Assy42", "Assy%"));
  EXPECT_TRUE(SqlLikeMatch("Assy42", "%42"));
  EXPECT_TRUE(SqlLikeMatch("Assy42", "A__y42"));
  EXPECT_TRUE(SqlLikeMatch("abc", "%"));
  EXPECT_TRUE(SqlLikeMatch("", "%"));
  EXPECT_TRUE(SqlLikeMatch("abc", "a%b%c"));
  EXPECT_FALSE(SqlLikeMatch("abc", "a_c_"));
  EXPECT_FALSE(SqlLikeMatch("abc", "b%"));
  EXPECT_FALSE(SqlLikeMatch("", "_"));
  // Backtracking case: '%' must be able to give characters back.
  EXPECT_TRUE(SqlLikeMatch("aXbYb", "a%b"));
}

TEST(StringUtil, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 4, "x"), "4-x");
  EXPECT_EQ(StrFormat("%.2f", 1.005), "1.00");
}

}  // namespace
}  // namespace pdm
