// Tests for parallel hierarchical views over the same flat object set
// (the paper's footnote 1 motivation for the flat representation).

#include <gtest/gtest.h>

#include "client/experiment.h"
#include "pdm/pdm_schema.h"

namespace pdm::client {
namespace {

class MultiHierarchyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ExperimentConfig config;
    config.generator.depth = 3;
    config.generator.branching = 3;
    config.generator.sigma = 1.0;  // full visibility: compare structures
    config.generator.build_functional_view = true;
    Result<std::unique_ptr<Experiment>> experiment =
        Experiment::Create(config);
    ASSERT_TRUE(experiment.ok()) << experiment.status();
    experiment_ = std::move(*experiment);
  }

  Result<ActionResult> Expand(const std::string& hierarchy) {
    ClientConfig config;
    config.hierarchy = hierarchy;
    RecursiveStrategy strategy(&experiment_->connection(),
                               &experiment_->rule_table(),
                               experiment_->user(), config);
    return strategy.MultiLevelExpand(experiment_->product().root_obid);
  }

  std::unique_ptr<Experiment> experiment_;
};

TEST_F(MultiHierarchyTest, GeneratorEmitsBothLinkSets) {
  EXPECT_EQ(experiment_->product().total_links, 39u);       // 3+9+27
  EXPECT_EQ(experiment_->product().functional_links, 39u);
  Result<ResultSet> counts = experiment_->server().database().Query(
      "SELECT hier, COUNT(*) FROM link GROUP BY hier ORDER BY 1");
  ASSERT_TRUE(counts.ok());
  ASSERT_EQ(counts->num_rows(), 2u);
  EXPECT_EQ(counts->At(0, 0).string_value(), "func");
  EXPECT_EQ(counts->At(0, 1).int64_value(), 39);
  EXPECT_EQ(counts->At(1, 0).string_value(), "phys");
}

TEST_F(MultiHierarchyTest, BothViewsSpanTheSameObjects) {
  Result<ActionResult> phys = Expand(pdmsys::kPhysicalHierarchy);
  Result<ActionResult> func = Expand(pdmsys::kFunctionalHierarchy);
  ASSERT_TRUE(phys.ok()) << phys.status();
  ASSERT_TRUE(func.ok()) << func.status();

  // Same node set...
  EXPECT_EQ(phys->tree.num_nodes(), 40u);  // root + 39
  EXPECT_EQ(func->tree.num_nodes(), 40u);
  for (const pdmsys::ProductNode& node : phys->tree.nodes()) {
    EXPECT_TRUE(func->tree.FindByObid(node.obid).has_value()) << node.obid;
  }
}

TEST_F(MultiHierarchyTest, ViewsDifferStructurally) {
  Result<ActionResult> phys = Expand(pdmsys::kPhysicalHierarchy);
  Result<ActionResult> func = Expand(pdmsys::kFunctionalHierarchy);
  ASSERT_TRUE(phys.ok() && func.ok());

  // At least one node has a different parent in the functional view.
  size_t differing = 0;
  for (const pdmsys::ProductNode& node : phys->tree.nodes()) {
    if (!node.parent.has_value()) continue;
    int64_t phys_parent = phys->tree.node(*node.parent).obid;
    std::optional<size_t> func_index = func->tree.FindByObid(node.obid);
    ASSERT_TRUE(func_index.has_value());
    const pdmsys::ProductNode& func_node = func->tree.node(*func_index);
    ASSERT_TRUE(func_node.parent.has_value());
    if (func->tree.node(*func_node.parent).obid != phys_parent) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 0u);
  // Both remain proper trees of the same depth.
  EXPECT_EQ(phys->tree.Depth(), 3u);
  EXPECT_EQ(func->tree.Depth(), 3u);
}

TEST_F(MultiHierarchyTest, HierarchiesDoNotLeakIntoEachOther) {
  // A navigational expand in the physical view must return exactly ω
  // children even though the root also has functional children.
  ClientConfig config;
  config.hierarchy = pdmsys::kPhysicalHierarchy;
  NavigationalStrategy strategy(&experiment_->connection(),
                                &experiment_->rule_table(),
                                experiment_->user(), config,
                                /*early_evaluation=*/true);
  Result<ActionResult> result =
      strategy.SingleLevelExpand(experiment_->product().root_obid);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->visible_nodes, 3u);
}

TEST_F(MultiHierarchyTest, WithoutFunctionalViewOnlyPhysicalLinksExist) {
  ExperimentConfig config;
  config.generator.depth = 2;
  config.generator.branching = 2;
  Result<std::unique_ptr<Experiment>> experiment =
      Experiment::Create(config);
  ASSERT_TRUE(experiment.ok());
  Result<ResultSet> funcs = (*experiment)->server().database().Query(
      "SELECT COUNT(*) FROM link WHERE hier = 'func'");
  ASSERT_TRUE(funcs.ok());
  EXPECT_EQ(funcs->At(0, 0).int64_value(), 0);
}

}  // namespace
}  // namespace pdm::client
