// Tests for the server endpoint, the client connection, and the
// client-side (late) rule evaluator.

#include <gtest/gtest.h>

#include "client/connection.h"
#include "client/rule_eval.h"
#include "pdm/generator.h"
#include "server/db_server.h"
#include "sql/parser.h"

namespace pdm::client {
namespace {

TEST(DbServer, ExecutesAndSizesResponses) {
  DbServer server;
  ASSERT_TRUE(server.database()
                  .ExecuteScript("CREATE TABLE t (a INTEGER);"
                                 "INSERT INTO t VALUES (1), (2)")
                  .ok());
  ResultSet rs;
  size_t bytes = 0;
  ASSERT_TRUE(server.Execute("SELECT * FROM t", &rs, &bytes).ok());
  EXPECT_EQ(rs.num_rows(), 2u);
  EXPECT_GT(bytes, 0u);

  // Fixed-size policy charges per row.
  server.mutable_config().fixed_row_bytes = 512;
  ASSERT_TRUE(server.Execute("SELECT * FROM t", &rs, &bytes).ok());
  EXPECT_EQ(bytes, 1024u);
  // Empty results still occupy a frame.
  ASSERT_TRUE(server.Execute("SELECT * FROM t WHERE a > 9", &rs, &bytes).ok());
  EXPECT_EQ(bytes, 64u);
}

TEST(Connection, AccountsEveryRoundTrip) {
  DbServer server;
  ASSERT_TRUE(server.database().Execute("CREATE TABLE t (a INTEGER)").ok());
  net::WanConfig wan;
  wan.latency_s = 0.1;
  Connection conn(&server, wan);

  ASSERT_TRUE(conn.Execute("INSERT INTO t VALUES (1)", nullptr).ok());
  ASSERT_TRUE(conn.Execute("SELECT * FROM t", nullptr).ok());
  EXPECT_EQ(conn.stats().round_trips, 2u);
  EXPECT_NEAR(conn.stats().latency_seconds, 0.4, 1e-9);

  conn.ResetStats();
  EXPECT_EQ(conn.stats().round_trips, 0u);
}

TEST(Connection, SizerOverridesServerPolicy) {
  DbServer server;
  ASSERT_TRUE(server.database()
                  .ExecuteScript("CREATE TABLE t (a INTEGER);"
                                 "INSERT INTO t VALUES (1), (2), (3)")
                  .ok());
  Connection conn(&server, net::WanConfig{});
  ResultSet rs;
  ASSERT_TRUE(conn.ExecuteSized("SELECT * FROM t", &rs,
                                [](const ResultSet& r) {
                                  return r.num_rows() * 1000;
                                })
                  .ok());
  EXPECT_DOUBLE_EQ(conn.stats().response_payload_bytes, 3000.0);
}

TEST(Connection, ErrorsDoNotRecordTraffic) {
  DbServer server;
  Connection conn(&server, net::WanConfig{});
  EXPECT_FALSE(conn.Execute("SELECT * FROM missing", nullptr).ok());
  EXPECT_EQ(conn.stats().round_trips, 0u);
}

class RuleEvalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    pdmsys::GeneratorConfig config;
    config.depth = 2;
    config.branching = 4;
    config.sigma = 0.5;
    Result<pdmsys::GeneratedProduct> product =
        pdmsys::GenerateProduct(&server_.database(), config);
    ASSERT_TRUE(product.ok());
    product_ = *product;

    rules::Rule acc;
    acc.condition = std::move(*rules::RowCondition::Parse("*", "acc = '+'"));
    rules_.AddRule(std::move(acc));
  }

  DbServer server_;
  rules::RuleTable rules_;
  pdmsys::GeneratedProduct product_;
};

TEST_F(RuleEvalTest, PreparedFilterSeparatesVisibleRows) {
  Result<ResultSet> rows =
      server_.database().Query("SELECT type, obid, acc FROM assy");
  ASSERT_TRUE(rows.ok());
  ClientRuleEvaluator evaluator(&rules_, pdmsys::UserContext{});
  Result<std::unique_ptr<PreparedRowFilter>> filter =
      evaluator.Prepare(rows->schema, rules::RuleAction::kQuery);
  ASSERT_TRUE(filter.ok()) << filter.status();

  size_t visible = 0;
  size_t acc_col = *rows->schema.FindColumn("acc");
  for (const Row& row : rows->rows) {
    Result<bool> pass = (*filter)->Passes(row);
    ASSERT_TRUE(pass.ok());
    EXPECT_EQ(*pass, row[acc_col].string_value() == "+");
    if (*pass) ++visible;
  }
  EXPECT_GT(visible, 0u);
  EXPECT_LT(visible, rows->num_rows());
}

TEST_F(RuleEvalTest, FilterRequiresTypeColumn) {
  ClientRuleEvaluator evaluator(&rules_, pdmsys::UserContext{});
  Schema schema({{"x", ColumnType::kInt64}});
  EXPECT_FALSE(evaluator.Prepare(schema, rules::RuleAction::kQuery).ok());
}

TEST_F(RuleEvalTest, InapplicableGroupsAreSkipped) {
  // A link rule cannot bind against a structure-less result: the group
  // silently does not apply.
  rules::Rule link_rule;
  link_rule.object_type = "link";
  link_rule.condition =
      std::move(*rules::RowCondition::Parse("link", "eff_from <= 50"));
  rules_.AddRule(std::move(link_rule));

  Result<ResultSet> rows =
      server_.database().Query("SELECT type, obid, acc FROM assy");
  ClientRuleEvaluator evaluator(&rules_, pdmsys::UserContext{});
  Result<std::unique_ptr<PreparedRowFilter>> filter =
      evaluator.Prepare(rows->schema, rules::RuleAction::kQuery);
  EXPECT_TRUE(filter.ok()) << filter.status();
}

TEST_F(RuleEvalTest, TreeConditionsEvaluateClientSide) {
  rules::Rule agg;
  agg.condition = std::make_unique<rules::TreeAggregateCondition>(
      AggKind::kCountStar, "", "assy", sql::BinaryOp::kLessEq,
      Value::Int64(3));
  rules_.AddRule(std::move(agg));

  ClientRuleEvaluator evaluator(&rules_, pdmsys::UserContext{});
  Result<ResultSet> nodes = server_.database().Query(
      "SELECT type, obid, checkedout FROM assy");
  ASSERT_TRUE(nodes.ok());
  // 5 assemblies (> 3): the aggregate fails.
  Result<bool> pass =
      evaluator.TreeConditionsPass(*nodes, rules::RuleAction::kQuery);
  ASSERT_TRUE(pass.ok()) << pass.status();
  EXPECT_FALSE(*pass);
}

TEST_F(RuleEvalTest, ForAllRowsFailsOnOneViolatingNode) {
  rules::Rule forall;
  forall.condition = std::make_unique<rules::ForAllRowsCondition>(
      "assy", std::move(*sql::ParseSqlExpression("checkedout = FALSE")));
  rules_.AddRule(std::move(forall));

  ASSERT_TRUE(server_.database()
                  .Execute("UPDATE assy SET checkedout = TRUE WHERE obid = " +
                           std::to_string(product_.root_obid))
                  .ok());
  ClientRuleEvaluator evaluator(&rules_, pdmsys::UserContext{});
  Result<ResultSet> nodes = server_.database().Query(
      "SELECT type, obid, checkedout FROM assy");
  Result<bool> pass =
      evaluator.TreeConditionsPass(*nodes, rules::RuleAction::kCheckOut);
  ASSERT_TRUE(pass.ok());
  EXPECT_FALSE(*pass);
}

}  // namespace
}  // namespace pdm::client
