// Tests for the observability layer (DESIGN.md 5f): span nesting and
// model-term attribution, exact agreement between traced per-component
// sums and the WAN link's accounting, the metrics registry (counters,
// histograms, the fingerprint-counter shim), Chrome trace export, the
// bounded statement-log ring, the everything-resets contract of
// DbServer::ResetObservability, and an 8-client traced admission-queue
// canary for TSan.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "client/experiment.h"
#include "common/string_util.h"
#include "net/wan_model.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/admission_queue.h"
#include "server/db_server.h"
#include "sql/fingerprint.h"

namespace pdm {
namespace {

using client::Experiment;
using client::ExperimentConfig;
using model::ActionKind;
using model::StrategyKind;

/// Every test starts from a clean process-wide tracer + registry and
/// leaves the tracer disabled, so tests stay order-independent.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Tracer::Global().Enable(true);
    obs::Tracer::Global().Clear();
    obs::Tracer::Global().set_capacity(1 << 16);
    obs::MetricsRegistry::Global().ResetAll();
  }
  void TearDown() override {
    obs::Tracer::Global().Enable(false);
    obs::Tracer::Global().Clear();
  }

  static Result<std::unique_ptr<Experiment>> MakeExperiment() {
    ExperimentConfig config;
    config.generator.depth = 2;
    config.generator.branching = 3;
    config.generator.sigma = 1.0;
    return Experiment::Create(config);
  }
};

double SumSim(const std::vector<obs::SpanRecord>& spans, obs::ModelTerm term) {
  double sum = 0;
  for (const obs::SpanRecord& s : spans) {
    if (s.term == term) sum += s.sim_dur_s;
  }
  return sum;
}

size_t CountTerm(const std::vector<obs::SpanRecord>& spans,
                 obs::ModelTerm term) {
  size_t n = 0;
  for (const obs::SpanRecord& s : spans) {
    if (s.term == term) ++n;
  }
  return n;
}

TEST_F(ObsTest, ActionTraceReconcilesWithWanStatsExactly) {
  Result<std::unique_ptr<Experiment>> experiment = MakeExperiment();
  ASSERT_TRUE(experiment.ok()) << experiment.status();
  Result<client::ActionResult> result =
      (*experiment)
          ->RunAction(StrategyKind::kNavigationalLate,
                      ActionKind::kMultiLevelExpand);
  ASSERT_TRUE(result.ok()) << result.status();

  std::vector<obs::SpanRecord> spans = obs::Tracer::Global().Snapshot();
  ASSERT_FALSE(spans.empty());

  // Exactly one root: the action span, parent 0, carrying the trace id
  // every other span of the run attaches to.
  std::vector<const obs::SpanRecord*> roots;
  for (const obs::SpanRecord& s : spans) {
    if (s.parent_id == 0) roots.push_back(&s);
  }
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_EQ(roots[0]->name, "action:navigational/mle");
  EXPECT_EQ(roots[0]->term, obs::ModelTerm::kNone);
  for (const obs::SpanRecord& s : spans) {
    EXPECT_EQ(s.trace_id, roots[0]->trace_id) << s.name;
  }

  // The traced t_lat / t_transfer sums ARE the WAN link's accounting:
  // same values added in the same order, so equality is exact.
  const net::WanStats& wan = result->wan;
  EXPECT_DOUBLE_EQ(SumSim(spans, obs::ModelTerm::kLat), wan.latency_seconds);
  EXPECT_DOUBLE_EQ(SumSim(spans, obs::ModelTerm::kTransfer),
                   wan.transfer_seconds);
  // One latency + one transfer span per exchange; one server span per
  // statement that reached DbServer (local rule probes bypass it).
  EXPECT_EQ(CountTerm(spans, obs::ModelTerm::kLat), wan.round_trips);
  EXPECT_EQ(CountTerm(spans, obs::ModelTerm::kTransfer), wan.round_trips);
  EXPECT_EQ(CountTerm(spans, obs::ModelTerm::kServer), wan.statements);

  // Engine-level spans live under the same trace on the wall timeline.
  EXPECT_GT(CountTerm(spans, obs::ModelTerm::kExec), 0u);
  EXPECT_EQ(obs::Tracer::Global().open_spans(), 0u);
}

TEST_F(ObsTest, SimulatedTimelineIsContiguousPerTrace) {
  Result<std::unique_ptr<Experiment>> experiment = MakeExperiment();
  ASSERT_TRUE(experiment.ok()) << experiment.status();
  ASSERT_TRUE((*experiment)
                  ->RunAction(StrategyKind::kRecursive,
                              ActionKind::kMultiLevelExpand)
                  .ok());

  std::vector<obs::SpanRecord> spans = obs::Tracer::Global().Snapshot();
  // The per-trace simulated clock allocates back-to-back intervals, so
  // the furthest simulated end equals the sum of all simulated
  // durations: no gaps, no overlaps.
  double sum = 0;
  double end = 0;
  for (const obs::SpanRecord& s : spans) {
    if (s.sim_start_s < 0) continue;
    EXPECT_GT(s.sim_dur_s, 0.0);
    sum += s.sim_dur_s;
    end = std::max(end, s.sim_start_s + s.sim_dur_s);
  }
  ASSERT_GT(sum, 0.0);
  EXPECT_DOUBLE_EQ(end, sum);
}

TEST_F(ObsTest, CounterAndHistogramBasics) {
  obs::Counter counter;
  counter.Increment();
  counter.Add(41);
  EXPECT_EQ(counter.value(), 42u);
  counter.Reset();
  EXPECT_EQ(counter.value(), 0u);

  // Bounds are inclusive upper bounds; the last bucket is overflow.
  obs::Histogram hist({1.0, 2.0, 4.0});
  hist.Observe(1.0);    // bucket 0 (inclusive)
  hist.Observe(1.5);    // bucket 1
  hist.Observe(4.0);    // bucket 2 (inclusive)
  hist.Observe(100.0);  // overflow
  ASSERT_EQ(hist.num_buckets(), 4u);
  EXPECT_EQ(hist.bucket_count(0), 1u);
  EXPECT_EQ(hist.bucket_count(1), 1u);
  EXPECT_EQ(hist.bucket_count(2), 1u);
  EXPECT_EQ(hist.bucket_count(3), 1u);
  EXPECT_EQ(hist.total_count(), 4u);
  EXPECT_NEAR(hist.sum(), 106.5, 1e-6);
  hist.Reset();
  EXPECT_EQ(hist.total_count(), 0u);
  EXPECT_DOUBLE_EQ(hist.sum(), 0.0);
}

TEST_F(ObsTest, RegistryFirstRegistrationWinsAndRefsAreStable) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  obs::Histogram& first = registry.histogram("obs_test.h", {1.0, 2.0});
  obs::Histogram& again = registry.histogram("obs_test.h", {9.0});
  EXPECT_EQ(&first, &again);
  EXPECT_EQ(again.bounds().size(), 2u);

  obs::Counter& c1 = registry.counter("obs_test.c");
  c1.Add(7);
  EXPECT_EQ(&c1, &registry.counter("obs_test.c"));
  std::vector<obs::CounterSnapshot> counters = registry.CounterSnapshots();
  auto it = std::find_if(
      counters.begin(), counters.end(),
      [](const obs::CounterSnapshot& s) { return s.name == "obs_test.c"; });
  ASSERT_NE(it, counters.end());
  EXPECT_EQ(it->value, 7u);
}

TEST_F(ObsTest, FingerprintCallCountShimReadsRegistryCounter) {
  uint64_t before = sql::FingerprintCallCount();
  ASSERT_TRUE(sql::FingerprintSql("SELECT 1").ok());
  EXPECT_EQ(sql::FingerprintCallCount(), before + 1);
  // The shim and the registry counter are the same instrument.
  std::vector<obs::CounterSnapshot> counters =
      obs::MetricsRegistry::Global().CounterSnapshots();
  auto it = std::find_if(counters.begin(), counters.end(),
                         [](const obs::CounterSnapshot& s) {
                           return s.name == "sql.fingerprint_calls";
                         });
  ASSERT_NE(it, counters.end());
  EXPECT_EQ(it->value, sql::FingerprintCallCount());
  obs::MetricsRegistry::Global().ResetAll();
  EXPECT_EQ(sql::FingerprintCallCount(), 0u);
}

TEST_F(ObsTest, TracerRingDropsOldestPastCapacity) {
  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.set_capacity(8);
  for (int i = 0; i < 20; ++i) {
    obs::ScopedSpan span(StrFormat("ring%d", i), obs::ModelTerm::kNone);
  }
  std::vector<obs::SpanRecord> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 8u);
  EXPECT_EQ(tracer.dropped_spans(), 12u);
  EXPECT_EQ(spans.front().name, "ring12");
  EXPECT_EQ(spans.back().name, "ring19");
}

TEST_F(ObsTest, ChromeTraceJsonCarriesBothTimelines) {
  {
    obs::ScopedSpan root("action:test", obs::ModelTerm::kNone);
    obs::Tracer::Global().RecordSim(root.context(), "wan:latency",
                                    obs::ModelTerm::kLat, 0.25, "stmts=1");
  }
  std::vector<obs::SpanRecord> spans = obs::Tracer::Global().Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  std::string json = obs::ToChromeTraceJson(spans);
  // Structural checks: the two process tracks, complete events, and the
  // simulated event at the sim clock's origin with 0.25 s duration
  // (Chrome timestamps are microseconds).
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"simulated time"), std::string::npos);
  EXPECT_NE(json.find("\"wall clock"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"wan:latency\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":250000"), std::string::npos);
  // Balanced braces/brackets — a cheap well-formedness screen.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));

  std::string path = ::testing::TempDir() + "/obs_test_trace.json";
  ASSERT_TRUE(obs::WriteChromeTraceFile(path, spans).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  EXPECT_EQ(static_cast<size_t>(std::ftell(f)), json.size());
  std::fclose(f);
  std::remove(path.c_str());
}

TEST_F(ObsTest, StatementLogIsABoundedRing) {
  DbServer server;
  server.mutable_config().statement_log_capacity = 4;
  server.EnableStatementLog(true);
  ASSERT_TRUE(
      server.Execute("CREATE TABLE t (id INTEGER)", nullptr, nullptr).ok());
  for (int i = 0; i < 9; ++i) {
    ASSERT_TRUE(server
                    .Execute(StrFormat("SELECT id FROM t WHERE id = %d", i),
                             nullptr, nullptr)
                    .ok());
  }
  // 10 statements through a capacity-4 ring: the latest 4 survive.
  EXPECT_EQ(server.statement_log_size(), 4u);
  EXPECT_EQ(server.statement_log_dropped(), 6u);
  std::vector<DbServer::StatementLogEntry> log = server.statement_log();
  ASSERT_EQ(log.size(), 4u);
  EXPECT_EQ(log.front().sql, "SELECT id FROM t WHERE id = 5");
  EXPECT_EQ(log.back().sql, "SELECT id FROM t WHERE id = 8");

  server.ClearStatementLog();
  EXPECT_EQ(server.statement_log_size(), 0u);
  EXPECT_EQ(server.statement_log_dropped(), 0u);

  // Capacity 0 = unbounded: nothing is ever dropped.
  server.mutable_config().statement_log_capacity = 0;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(server.Execute("SELECT id FROM t", nullptr, nullptr).ok());
  }
  EXPECT_EQ(server.statement_log_size(), 10u);
  EXPECT_EQ(server.statement_log_dropped(), 0u);
}

// The satellite contract: ResetObservability() resets EVERY observable
// surface — statement log (incl. drop counter), wave log, plan-cache
// stats, the tracer, and every instrument in the metrics registry. The
// registry assertions iterate all snapshots, so an instrument added
// later that ResetAll misses fails this test by construction.
TEST_F(ObsTest, ResetObservabilityResetsEverySurface) {
  Result<std::unique_ptr<Experiment>> experiment = MakeExperiment();
  ASSERT_TRUE(experiment.ok()) << experiment.status();
  Experiment& e = **experiment;
  e.server().EnableStatementLog(true);

  // Populate all surfaces: serial + batched traffic, a wave through the
  // admission queue, plan-cache activity, spans, counters, histograms.
  ASSERT_TRUE(e.RunAction(StrategyKind::kNavigationalLate,
                          ActionKind::kMultiLevelExpand)
                  .ok());
  ASSERT_TRUE(e.RunAction(StrategyKind::kBatchedEarly,
                          ActionKind::kMultiLevelExpand)
                  .ok());
  std::vector<std::string> statements = {"SELECT obid FROM assy"};
  e.server().Submit(1, statements);

  ASSERT_GT(e.server().statement_log_size(), 0u);
  ASSERT_FALSE(e.server().admission_queue().wave_log().empty());
  ASSERT_FALSE(obs::Tracer::Global().Snapshot().empty());
  PlanCacheStats cache = e.server().database().plan_cache().stats();
  ASSERT_GT(cache.hits + cache.misses, 0u);

  e.server().ResetObservability();

  EXPECT_EQ(e.server().statement_log_size(), 0u);
  EXPECT_EQ(e.server().statement_log_dropped(), 0u);
  EXPECT_TRUE(e.server().admission_queue().wave_log().empty());
  cache = e.server().database().plan_cache().stats();
  EXPECT_EQ(cache.hits, 0u);
  EXPECT_EQ(cache.misses, 0u);
  EXPECT_TRUE(obs::Tracer::Global().Snapshot().empty());
  EXPECT_EQ(obs::Tracer::Global().open_spans(), 0u);
  EXPECT_EQ(obs::Tracer::Global().dropped_spans(), 0u);
  for (const obs::CounterSnapshot& c :
       obs::MetricsRegistry::Global().CounterSnapshots()) {
    EXPECT_EQ(c.value, 0u) << c.name;
  }
  for (const obs::HistogramSnapshot& h :
       obs::MetricsRegistry::Global().HistogramSnapshots()) {
    EXPECT_EQ(h.total_count, 0u) << h.name;
    EXPECT_DOUBLE_EQ(h.sum, 0.0) << h.name;
  }
  for (const obs::LabeledCounterSnapshot& c :
       obs::MetricsRegistry::Global().LabeledCounterSnapshots()) {
    EXPECT_EQ(c.value, 0u) << c.name;
  }
  for (const obs::LogHistogramSnapshot& h :
       obs::MetricsRegistry::Global().LogHistogramSnapshots()) {
    EXPECT_EQ(h.total_count, 0u) << h.name;
    EXPECT_DOUBLE_EQ(h.sum, 0.0) << h.name;
  }
  // Gauges track live state (queue depth, active workers), not a
  // measurement window: with the system idle they must read zero too.
  for (const obs::GaugeSnapshot& g :
       obs::MetricsRegistry::Global().GaugeSnapshots()) {
    EXPECT_EQ(g.value, 0) << g.name;
  }
  // The slow-query log is part of the server's measurement window.
  EXPECT_TRUE(e.server().slow_query_log().OverThreshold().empty());
  EXPECT_TRUE(e.server().slow_query_log().TopK().empty());
  EXPECT_EQ(e.server().slow_query_log().dropped(), 0u);
  // WAN stats are per-connection (client-side) state with their own
  // reset; clearing them completes the fresh measurement window.
  e.connection().ResetStats();
  EXPECT_EQ(e.connection().stats().round_trips, 0u);
  EXPECT_DOUBLE_EQ(e.connection().stats().total_seconds(), 0.0);
}

// Regression (this PR's satellite 2): wan_model.cc binds a static
// reference to the "wan.exchange_sim_seconds" histogram once per
// process. MetricsRegistry never evicts instruments and ResetAll zeroes
// them IN PLACE, so a record after a reset must land in the
// registry-visible instrument — not in a dangling pre-reset one, and
// not in a fresh duplicate the snapshots can't see.
TEST_F(ObsTest, WanExchangeHistogramSurvivesResetAll) {
  net::WanLink link{net::WanConfig{}};
  link.RecordRoundTrip(100, 512);  // binds and populates the histogram
  obs::MetricsRegistry::Global().ResetAll();
  link.RecordRoundTrip(100, 512);
  std::vector<obs::LogHistogramSnapshot> hists =
      obs::MetricsRegistry::Global().LogHistogramSnapshots();
  auto it = std::find_if(hists.begin(), hists.end(),
                         [](const obs::LogHistogramSnapshot& h) {
                           return h.name == "wan.exchange_sim_seconds" &&
                                  h.labels ==
                                      obs::LabelSet{{"site", "local"}};
                         });
  ASSERT_NE(it, hists.end());
  // Exactly the one post-reset exchange: the pre-reset count is gone and
  // the post-reset observation was not lost — ResetAll zeroes instruments
  // in place, so the WanLink's cached pointer stays valid.
  EXPECT_EQ(it->total_count, 1u);
}

// The pipelined action's trace must still reconcile with the WAN stats:
// t_lat spans carry only the non-hidden latency, so t_lat + t_transfer
// sums to the link's elapsed total, while t_overlap_hidden overlays
// attribute the saving per level (DESIGN.md 5g).
TEST_F(ObsTest, PipelinedActionTraceReconcilesWithWanStats) {
  Result<std::unique_ptr<Experiment>> experiment = MakeExperiment();
  ASSERT_TRUE(experiment.ok()) << experiment.status();
  Result<client::ActionResult> result =
      (*experiment)
          ->RunAction(StrategyKind::kPipelinedLate,
                      ActionKind::kMultiLevelExpand);
  ASSERT_TRUE(result.ok()) << result.status();
  const net::WanStats& wan = result->wan;
  ASSERT_GT(wan.overlap_hidden_seconds, 0.0);

  std::vector<obs::SpanRecord> spans = obs::Tracer::Global().Snapshot();
  EXPECT_NEAR(SumSim(spans, obs::ModelTerm::kLat) +
                  SumSim(spans, obs::ModelTerm::kTransfer),
              wan.total_seconds(), 1e-9);
  EXPECT_DOUBLE_EQ(SumSim(spans, obs::ModelTerm::kOverlapHidden),
                   wan.overlap_hidden_seconds);
  // One latency/transfer span pair per exchange; one hidden overlay per
  // overlapped exchange — every level but the root's (depth = 2).
  EXPECT_EQ(CountTerm(spans, obs::ModelTerm::kLat), wan.round_trips);
  EXPECT_EQ(CountTerm(spans, obs::ModelTerm::kTransfer), wan.round_trips);
  EXPECT_EQ(CountTerm(spans, obs::ModelTerm::kOverlapHidden),
            wan.round_trips - 1);
  EXPECT_EQ(obs::Tracer::Global().open_spans(), 0u);
}

// TSan acceptance canary: eight concurrent clients through the shared
// admission queue with tracing AND the statement log enabled. Every
// span lands on the submitting client's trace (8 roots), queue waits
// are attributed, and nothing races.
TEST_F(ObsTest, EightClientTracedAdmissionRunIsConsistent) {
  Result<std::unique_ptr<Experiment>> experiment = MakeExperiment();
  ASSERT_TRUE(experiment.ok()) << experiment.status();
  Experiment& e = **experiment;
  e.server().EnableStatementLog(true);
  e.server().mutable_config().batch_threads = 4;

  client::MultiClientOptions options;
  options.clients = 8;
  options.strategy = StrategyKind::kBatchedEarly;
  options.action = ActionKind::kMultiLevelExpand;
  Result<client::MultiClientResult> result =
      client::RunMultiClientAction(e, options);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->per_client.size(), 8u);
  for (const client::ActionResult& action : result->per_client) {
    EXPECT_EQ(action.tree.num_nodes(), result->per_client[0].tree.num_nodes());
  }

  std::vector<obs::SpanRecord> spans = obs::Tracer::Global().Snapshot();
  size_t roots = 0;
  for (const obs::SpanRecord& s : spans) {
    if (s.parent_id == 0) ++roots;
  }
  EXPECT_EQ(roots, 8u);
  EXPECT_GT(CountTerm(spans, obs::ModelTerm::kQueueWait), 0u);
  EXPECT_GT(CountTerm(spans, obs::ModelTerm::kServer), 0u);
  EXPECT_EQ(obs::Tracer::Global().open_spans(), 0u);
  // Wave statements were logged under the mutex-guarded ring while the
  // run was in flight; every entry is attributable to one of the eight
  // clients (ids 0..7) and to a wave.
  size_t wave_entries = 0;
  for (const DbServer::StatementLogEntry& entry : e.server().statement_log()) {
    if (entry.wave_id == 0) continue;
    ++wave_entries;
    EXPECT_LT(entry.client_id, 8u);
  }
  EXPECT_GT(wave_entries, 0u);
}

}  // namespace
}  // namespace pdm
