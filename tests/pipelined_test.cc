// Tests for the pipelined level-overlap expand (DESIGN.md 5g): byte
// identity with the batched client on the 5×5 product, the strictly
// smaller simulated total, degenerate trees (single level, empty
// intermediate level), fail-fast draining of an in-flight batch without
// deadlock, and a 4-client concurrent pipelined canary for TSan.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "client/experiment.h"
#include "model/cost_model.h"
#include "server/db_server.h"

namespace pdm {
namespace {

using model::ActionKind;
using model::StrategyKind;

Result<std::unique_ptr<client::Experiment>> MakeExperiment(int depth,
                                                           int branching,
                                                           double sigma) {
  client::ExperimentConfig config;
  config.generator.depth = depth;
  config.generator.branching = branching;
  config.generator.sigma = sigma;
  return client::Experiment::Create(config);
}

/// Acceptance check on the deterministic 5×5 product: the pipelined MLE
/// returns the byte-identical tree, ships the identical statements and
/// volume in the same α+1 round trips as the batched MLE — and its
/// simulated total is strictly below the batched one, by exactly the
/// hidden-latency sum.
TEST(PipelinedStrategy, FiveByFiveByteIdenticalAndStrictlyFaster) {
  Result<std::unique_ptr<client::Experiment>> experiment =
      MakeExperiment(5, 5, 0.6);
  ASSERT_TRUE(experiment.ok()) << experiment.status();
  client::Experiment& e = **experiment;

  const struct {
    StrategyKind pipelined;
    StrategyKind batched;
  } kVariants[] = {
      {StrategyKind::kPipelinedLate, StrategyKind::kBatchedLate},
      {StrategyKind::kPipelinedEarly, StrategyKind::kBatchedEarly}};
  for (const auto& variant : kVariants) {
    Result<client::ActionResult> batched =
        e.RunAction(variant.batched, ActionKind::kMultiLevelExpand);
    ASSERT_TRUE(batched.ok()) << batched.status();
    Result<client::ActionResult> pipelined =
        e.RunAction(variant.pipelined, ActionKind::kMultiLevelExpand);
    ASSERT_TRUE(pipelined.ok()) << pipelined.status();

    // Identical wire traffic: same α+1 round trips, same statements,
    // same request/response volume, batch for batch.
    EXPECT_EQ(pipelined->wan.round_trips, 6u);
    EXPECT_EQ(pipelined->wan.round_trips, batched->wan.round_trips);
    EXPECT_EQ(pipelined->wan.statements, batched->wan.statements);
    EXPECT_EQ(pipelined->wan.statements, e.product().visible_nodes + 1);
    EXPECT_DOUBLE_EQ(pipelined->wan.request_payload_bytes,
                     batched->wan.request_payload_bytes);
    EXPECT_DOUBLE_EQ(pipelined->wan.response_payload_bytes,
                     batched->wan.response_payload_bytes);
    EXPECT_DOUBLE_EQ(pipelined->wan.charged_bytes,
                     batched->wan.charged_bytes);

    // Byte-identical result.
    EXPECT_EQ(pipelined->tree.ToString(1 << 20),
              batched->tree.ToString(1 << 20));
    EXPECT_EQ(pipelined->transmitted_rows, batched->transmitted_rows);
    EXPECT_EQ(pipelined->visible_nodes, batched->visible_nodes);

    // Strictly faster, by exactly the hidden latency; latency and
    // transfer sums themselves are unchanged.
    EXPECT_DOUBLE_EQ(pipelined->wan.latency_seconds,
                     batched->wan.latency_seconds);
    EXPECT_DOUBLE_EQ(pipelined->wan.transfer_seconds,
                     batched->wan.transfer_seconds);
    EXPECT_GT(pipelined->wan.overlap_hidden_seconds, 0.0);
    EXPECT_DOUBLE_EQ(batched->wan.overlap_hidden_seconds, 0.0);
    EXPECT_LT(pipelined->seconds(), batched->seconds());
    EXPECT_DOUBLE_EQ(
        pipelined->seconds(),
        batched->seconds() - pipelined->wan.overlap_hidden_seconds);
    // Per level, the hidden part never exceeds the 2·T_Lat window.
    for (const net::ExchangeRecord& x : e.connection().link().exchanges()) {
      EXPECT_LE(x.hidden_seconds, 2 * e.config().wan.latency_s + 1e-12);
    }
  }
}

// A tree whose root has no visible children (σ=0, late eval): the whole
// MLE is the root's expand — one exchange, nothing to overlap, no empty
// second batch on the wire.
TEST(PipelinedStrategy, SingleLevelTreeHidesNothing) {
  Result<std::unique_ptr<client::Experiment>> experiment =
      MakeExperiment(1, 4, 0.0);
  ASSERT_TRUE(experiment.ok()) << experiment.status();
  client::Experiment& e = **experiment;

  Result<client::ActionResult> pipelined =
      e.RunAction(StrategyKind::kPipelinedLate, ActionKind::kMultiLevelExpand);
  ASSERT_TRUE(pipelined.ok()) << pipelined.status();
  EXPECT_EQ(pipelined->wan.round_trips, 1u);
  EXPECT_EQ(pipelined->wan.statements, 1u);
  EXPECT_DOUBLE_EQ(pipelined->wan.overlap_hidden_seconds, 0.0);
  EXPECT_EQ(pipelined->tree.num_nodes(), 1u);  // the root alone
  // The ω invisible children still crossed the WAN (late evaluation).
  EXPECT_EQ(pipelined->transmitted_rows, 4u);
  EXPECT_FALSE(e.connection().link().exchange_open());
}

// An empty intermediate level (σ=0 on a depth-2 product): the level-1
// frontier filters to nothing, so the pipeline stops after the root's
// exchange instead of shipping an empty batch — and stays byte-identical
// to the batched client.
TEST(PipelinedStrategy, EmptyIntermediateLevelStopsThePipeline) {
  Result<std::unique_ptr<client::Experiment>> experiment =
      MakeExperiment(2, 3, 0.0);
  ASSERT_TRUE(experiment.ok()) << experiment.status();
  client::Experiment& e = **experiment;

  Result<client::ActionResult> batched =
      e.RunAction(StrategyKind::kBatchedLate, ActionKind::kMultiLevelExpand);
  ASSERT_TRUE(batched.ok()) << batched.status();
  Result<client::ActionResult> pipelined =
      e.RunAction(StrategyKind::kPipelinedLate, ActionKind::kMultiLevelExpand);
  ASSERT_TRUE(pipelined.ok()) << pipelined.status();

  EXPECT_EQ(pipelined->wan.round_trips, 1u);
  EXPECT_EQ(pipelined->wan.round_trips, batched->wan.round_trips);
  EXPECT_EQ(pipelined->tree.ToString(1 << 20), batched->tree.ToString(1 << 20));
  EXPECT_DOUBLE_EQ(pipelined->wan.charged_bytes, batched->wan.charged_bytes);
  EXPECT_DOUBLE_EQ(pipelined->wan.overlap_hidden_seconds, 0.0);
}

// Fail-fast mid-pipeline: collect a level whose batch contains a failing
// statement while the next level's batch is already in flight. Dropping
// the never-collected PendingBatch must drain the server work and abort
// the exchange without deadlocking or corrupting the link.
TEST(PipelinedConnection, MidPipelineFailureDrainsOutstandingBatch) {
  Result<std::unique_ptr<client::Experiment>> experiment =
      MakeExperiment(2, 3, 1.0);
  ASSERT_TRUE(experiment.ok()) << experiment.status();
  client::Connection& conn = (*experiment)->connection();
  conn.ResetStats();

  {
    // Level 1: fine.
    client::Connection::PendingBatch first = conn.ExecuteBatchPipelined(
        {"SELECT COUNT(*) FROM assy"}, /*overlap_previous=*/false);
    ASSERT_TRUE(first.valid());
    std::vector<Result<ResultSet>> responses;
    first.Collect(&responses);
    ASSERT_EQ(responses.size(), 1u);
    EXPECT_TRUE(responses[0].ok());
    EXPECT_FALSE(first.valid());  // consumed

    // Level 2: one failing slot, collected after level 3 is in flight.
    client::Connection::PendingBatch second = conn.ExecuteBatchPipelined(
        {"SELECT COUNT(*) FROM comp", "SELECT nosuchcol FROM assy"},
        /*overlap_previous=*/true);
    client::Connection::PendingBatch third = conn.ExecuteBatchPipelined(
        {"SELECT COUNT(*) FROM assy"}, /*overlap_previous=*/true);
    // Only one exchange may be in flight per connection: the third batch
    // ran at the server but never entered the link's timeline.
    second.Collect(&responses);
    ASSERT_EQ(responses.size(), 2u);
    EXPECT_TRUE(responses[0].ok());
    EXPECT_FALSE(responses[1].ok());
    EXPECT_TRUE(third.valid());
    // `third` goes out of scope never collected: its destructor drains
    // the future and aborts the open exchange.
  }

  EXPECT_FALSE(conn.link().exchange_open());
  EXPECT_EQ(conn.stats().round_trips, 2u);  // the collected exchanges only
  EXPECT_GT(conn.stats().overlap_hidden_seconds, 0.0);

  // The link is fully usable afterwards.
  ResultSet out;
  ASSERT_TRUE(conn.Execute("SELECT COUNT(*) FROM assy", &out).ok());
  EXPECT_EQ(conn.stats().round_trips, 3u);
}

// Strategy-level fail-fast: expanding a root that does not exist makes
// the level-0 statement fail; the action must report the error cleanly,
// with no exchange left open and the connection still usable.
TEST(PipelinedStrategy, ActionErrorLeavesTheLinkClean) {
  Result<std::unique_ptr<client::Experiment>> experiment =
      MakeExperiment(2, 3, 1.0);
  ASSERT_TRUE(experiment.ok()) << experiment.status();
  client::Experiment& e = **experiment;

  // Drop the component table out from under the expand queries: every
  // level's statements now fail at bind time.
  ASSERT_TRUE(e.server().Execute("DROP TABLE comp", nullptr, nullptr).ok());
  Result<client::ActionResult> pipelined =
      e.RunAction(StrategyKind::kPipelinedLate, ActionKind::kMultiLevelExpand);
  EXPECT_FALSE(pipelined.ok());
  EXPECT_FALSE(e.connection().link().exchange_open());
  ResultSet out;
  EXPECT_TRUE(e.connection().Execute("SELECT COUNT(*) FROM assy", &out).ok());
}

// TSan acceptance canary: four concurrent pipelined clients through the
// shared admission queue. Each client's speculative issues ride on
// background threads, all coalescing into waves, and every client still
// gets the byte-identical tree with pipelined timing on its own link.
TEST(PipelinedStrategy, FourConcurrentPipelinedClientsAgree) {
  Result<std::unique_ptr<client::Experiment>> experiment =
      MakeExperiment(3, 3, 0.6);
  ASSERT_TRUE(experiment.ok()) << experiment.status();
  client::Experiment& e = **experiment;
  e.server().mutable_config().batch_threads = 4;

  Result<client::ActionResult> solo =
      e.RunAction(StrategyKind::kPipelinedEarly, ActionKind::kMultiLevelExpand);
  ASSERT_TRUE(solo.ok()) << solo.status();

  client::MultiClientOptions options;
  options.clients = 4;
  options.strategy = StrategyKind::kPipelinedEarly;
  options.action = ActionKind::kMultiLevelExpand;
  Result<client::MultiClientResult> result =
      client::RunMultiClientAction(e, options);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->per_client.size(), 4u);
  for (const client::ActionResult& action : result->per_client) {
    EXPECT_EQ(action.tree.ToString(1 << 20), solo->tree.ToString(1 << 20));
    EXPECT_EQ(action.wan.round_trips, solo->wan.round_trips);
    EXPECT_DOUBLE_EQ(action.wan.overlap_hidden_seconds,
                     solo->wan.overlap_hidden_seconds);
    EXPECT_DOUBLE_EQ(action.seconds(), solo->seconds());
  }
  e.server().mutable_config().batch_threads = 1;
}

}  // namespace
}  // namespace pdm
